#include "common/metrics.hpp"

#include "common/error.hpp"
#include "common/jsonfmt.hpp"
#include "common/strfmt.hpp"

namespace ipass::metrics {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

void check_name(const std::string& name) {
  require(valid_metric_name(name),
          strf("metrics: name '%s' must match [a-zA-Z_][a-zA-Z0-9_]*",
               name.c_str()));
}

std::string u64(std::uint64_t v) {
  return strf("%llu", static_cast<unsigned long long>(v));
}

std::string i64(std::int64_t v) {
  return strf("%lld", static_cast<long long>(v));
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lk(m_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lk(m_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lk(m_);
  return histograms_[name];
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lk(m_);
  std::string out;
  out.reserve(1024);
  out += "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + u64(c.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": {\"value\": " + i64(g.value()) +
           ", \"high_water\": " + i64(g.high_water()) + "}";
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": {\"count\": " + u64(h.count()) +
           ", \"sum_ns\": " + u64(h.sum_ns()) + ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.bucket(b);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      if (!first_bucket) out += ", ";
      first_bucket = false;
      if (b == Histogram::kOverflowBucket) {
        out += "[\"overflow\", " + u64(n) + "]";
      } else {
        out += "[" + u64(Histogram::bucket_upper_ns(b)) + ", " + u64(n) + "]";
      }
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lk(m_);
  std::string out;
  out.reserve(2048);
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + u64(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + i64(g.value()) + "\n";
    out += "# TYPE " + name + "_high_water gauge\n";
    out += name + "_high_water " + i64(g.high_water()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    // Cumulative buckets with an upper bound in seconds, per convention.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += h.bucket(b);
      if (b == Histogram::kOverflowBucket) {
        out += name + "_bucket{le=\"+Inf\"} " + u64(cumulative) + "\n";
      } else {
        const double le_seconds =
            static_cast<double>(Histogram::bucket_upper_ns(b)) * 1e-9;
        out += name + strf("_bucket{le=\"%.9g\"} ", le_seconds) + u64(cumulative) + "\n";
      }
    }
    out += name + "_sum " + strf("%.9g", static_cast<double>(h.sum_ns()) * 1e-9) + "\n";
    out += name + "_count " + u64(h.count()) + "\n";
  }
  return out;
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

void set_profiling_enabled(bool enabled) noexcept {
  profiling_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace ipass::metrics
