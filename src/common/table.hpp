// Minimal ASCII table renderer used by every reproduction bench to print
// paper-vs-measured tables.
#pragma once

#include <string>
#include <vector>

namespace ipass {

enum class Align { Left, Right };

// A rectangular text table with a header row, rendered with box-drawing
// ASCII.  Cells are plain strings; numeric formatting is the caller's job
// (see strfmt.hpp).
class TextTable {
 public:
  // `headers` fixes the column count for all subsequent rows.
  explicit TextTable(std::vector<std::string> headers);

  // Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Insert a horizontal rule before the next appended row.
  void add_rule();

  // Right-align the given column (default is left).
  void align_right(std::size_t column);

  std::size_t row_count() const { return rows_.size(); }

  // Render the full table including borders.
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
  bool pending_rule_ = false;
};

// Render a one-line horizontal bar chart value (used for Fig-3/Fig-5 style
// output): e.g. bar(0.79, 40) -> "###############################       ".
std::string text_bar(double fraction, std::size_t width);

}  // namespace ipass
