// Dense complex linear algebra for the MNA AC engine.
//
// Circuits in this library are small (tens of nodes), so a straightforward
// dense LU with partial pivoting is both simplest and fastest.
#pragma once

#include <complex>
#include <vector>

namespace ipass {

using Complex = std::complex<double>;

// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& at(std::size_t r, std::size_t c);
  const Complex& at(std::size_t r, std::size_t c) const;

  // All entries set to zero, shape preserved.
  void set_zero();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

// Solve A x = b by LU decomposition with partial pivoting.
// A is modified in place.  Throws NumericalError on a (near-)singular matrix.
std::vector<Complex> solve_inplace(CMatrix& a, std::vector<Complex> b);

// Convenience overload preserving A.
std::vector<Complex> solve(const CMatrix& a, const std::vector<Complex>& b);

}  // namespace ipass
