// Dense complex linear algebra for the MNA AC engine.
//
// Circuits in this library are small (tens of nodes), so a straightforward
// dense LU with partial pivoting is both simplest and fastest.
#pragma once

#include <complex>
#include <vector>

namespace ipass {

using Complex = std::complex<double>;

// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& at(std::size_t r, std::size_t c);
  const Complex& at(std::size_t r, std::size_t c) const;

  // All entries set to zero, shape preserved.
  void set_zero();

  // Raw row-major storage, for pre-planned hot-loop access (the MNA stamp
  // plan); the linear index of (r, c) is r * cols() + c.
  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

// Solve A x = b by LU decomposition with partial pivoting, allocation-free:
// A is overwritten by its factors and b by the solution.  Throws
// NumericalError on a (near-)singular matrix.  This is the hot-loop variant
// used by the reusable MNA sweep workspace.
void solve_overwrite(CMatrix& a, std::vector<Complex>& b);

// Solve A x = b by LU decomposition with partial pivoting.
// A is modified in place.  Throws NumericalError on a (near-)singular matrix.
std::vector<Complex> solve_inplace(CMatrix& a, std::vector<Complex> b);

// Convenience overload preserving A.
std::vector<Complex> solve(const CMatrix& a, const std::vector<Complex>& b);

}  // namespace ipass
