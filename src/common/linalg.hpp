// Dense complex linear algebra for the MNA AC engine.
//
// Circuits in this library are small (tens of nodes), so a straightforward
// dense LU with partial pivoting is both simplest and fastest.  Two solver
// tiers share that algorithm:
//
//   solve_overwrite        one system at a time, used by SweepWorkspace;
//   batch_solve_overwrite  W same-size systems at once in structure-of-
//                          arrays layout, used by BatchSweepWorkspace to
//                          feed the tolerance Monte-Carlo engine.
//
// The batch solver is *bit-identical* per lane to the scalar solver: pivots
// are selected per lane with the same magnitude comparisons and every
// arithmetic operation is performed in the same order per matrix, so lane w
// of a batch solve equals a scalar solve of that lane's system down to the
// last bit.  The tolerance engine's determinism contract rests on this.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ipass {

using Complex = std::complex<double>;

// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& at(std::size_t r, std::size_t c);
  const Complex& at(std::size_t r, std::size_t c) const;

  // All entries set to zero, shape preserved.
  void set_zero();

  // Raw row-major storage, for pre-planned hot-loop access (the MNA stamp
  // plan); the linear index of (r, c) is r * cols() + c.
  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

// Solve A x = b by LU decomposition with partial pivoting, allocation-free:
// A is overwritten by its factors and b by the solution.  Throws
// NumericalError on a (near-)singular matrix.  This is the hot-loop variant
// used by the reusable MNA sweep workspace.
void solve_overwrite(CMatrix& a, std::vector<Complex>& b);

// Solve A x = b by LU decomposition with partial pivoting.
// A is modified in place.  Throws NumericalError on a (near-)singular matrix.
std::vector<Complex> solve_inplace(CMatrix& a, std::vector<Complex> b);

// Convenience overload preserving A.
std::vector<Complex> solve(const CMatrix& a, const std::vector<Complex>& b);

// ------------------------------------------------------------------ batch

// Upper bound on the lane count of a batch solve; the solver keeps per-lane
// pivot scratch on the stack.
inline constexpr std::size_t kMaxBatchLanes = 32;

// W same-size complex matrices in structure-of-arrays layout: separate
// re[]/im[] planes with the *lane* index innermost, so the element (r, c)
// of lane w lives at (r * n + c) * lanes + w.  Sweeping w at a fixed (r, c)
// touches contiguous memory, which is what lets the k-elimination inner
// loops of batch_solve_overwrite auto-vectorize.
class BatchCMatrix {
 public:
  BatchCMatrix() = default;
  BatchCMatrix(std::size_t n, std::size_t lanes);

  std::size_t size() const { return n_; }
  std::size_t lanes() const { return lanes_; }
  std::size_t index(std::size_t r, std::size_t c, std::size_t lane) const {
    return (r * n_ + c) * lanes_ + lane;
  }

  // All entries of every lane set to zero.
  void set_zero();

  Complex get(std::size_t r, std::size_t c, std::size_t lane) const;
  void set(std::size_t r, std::size_t c, std::size_t lane, Complex value);

  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }

 private:
  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  std::vector<double> re_;
  std::vector<double> im_;
};

// W same-size complex vectors in the matching SoA layout: entry i of lane w
// lives at i * lanes + w.
class BatchCVector {
 public:
  BatchCVector() = default;
  BatchCVector(std::size_t n, std::size_t lanes);

  std::size_t size() const { return n_; }
  std::size_t lanes() const { return lanes_; }
  std::size_t index(std::size_t i, std::size_t lane) const { return i * lanes_ + lane; }

  void set_zero();

  Complex get(std::size_t i, std::size_t lane) const;
  void set(std::size_t i, std::size_t lane, Complex value);

  // Copy every lane of `other` into this vector (sizes must match).
  void copy_from(const BatchCVector& other);

  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }

 private:
  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  std::vector<double> re_;
  std::vector<double> im_;
};

// Factor and solve all W systems A_w x_w = b_w at once: A is overwritten by
// its per-lane LU factors and b by the per-lane solutions.  Each lane picks
// its own pivot rows; the arithmetic per matrix is ordered exactly like
// solve_overwrite, so every lane's solution is bit-identical to a scalar
// solve of the same system.  Throws NumericalError as soon as *any* lane
// turns out (near-)singular — the same condition under which the scalar
// solver would have thrown for that lane — leaving a and b unspecified.
//
// solved_down_to truncates the back substitution: only solution entries
// i >= solved_down_to are produced (entry i depends on entries > i alone,
// so the produced entries still carry exactly the full-solve bits; the
// entries below hold elimination residue).  The MNA insertion-loss path
// uses this to stop at the output port's node.
void batch_solve_overwrite(BatchCMatrix& a, BatchCVector& b,
                           std::size_t solved_down_to = 0);

namespace detail {

// Complex division with results bit-identical to the std::complex<double>
// operator/ of this toolchain (Smith's algorithm, as emitted by libgcc's
// __divdc3 for in-range operands), but inlinable in per-lane hot loops.
// Operands far outside the normal range are delegated to the library
// operator, whose extra rescaling steps diverge from plain Smith there.
inline Complex div_exact(Complex num, Complex den) {
  const double a = num.real(), b = num.imag();
  const double c = den.real(), d = den.imag();
  const double fa = a < 0.0 ? -a : a, fb = b < 0.0 ? -b : b;
  const double fc = c < 0.0 ? -c : c, fd = d < 0.0 ? -d : d;
  if (fa < 1e140 && fb < 1e140 && fc < 1e140 && fd < 1e140 && (fc > 1e-140 || fd > 1e-140)) {
    double x, y;
    if (fc < fd) {
      const double ratio = c / d;
      const double denom = (c * ratio) + d;
      x = ((a * ratio) + b) / denom;
      y = ((b * ratio) - a) / denom;
    } else {
      const double ratio = d / c;
      const double denom = c + (d * ratio);
      x = (a + (b * ratio)) / denom;
      y = (b - (a * ratio)) / denom;
    }
    return Complex(x, y);
  }
  return num / den;
}

// 1 / z with the same bits as div_exact(Complex(1, 0), z), specialized for
// the purely imaginary and purely real denominators that lossless reactive
// elements and resistors produce.  Smith's algorithm collapses there:
//   z = (±0, d):  ratio = ±0/d, denom = d, x = (+0)/d = copysign(0, d),
//                 y = (±0 - 1)/d = -1/d           — one real division;
//   z = (c, 0), c > 0:  ratio = +0/c, x = 1/c, y = (0 - +0)/c = +0.
inline Complex recip_exact(Complex z) {
  const double c = z.real(), d = z.imag();
  const double fd = d < 0.0 ? -d : d;
  if (c == 0.0 && fd > 1e-140 && fd < 1e140) {
    return Complex(d > 0.0 ? 0.0 : -0.0, -1.0 / d);
  }
  if (d == 0.0 && c > 1e-140 && c < 1e140) {
    return Complex(1.0 / c, 0.0);
  }
  return div_exact(Complex(1.0, 0.0), z);
}

}  // namespace detail

}  // namespace ipass
