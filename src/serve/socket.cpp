#include "serve/socket.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ipass::serve {

namespace {

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Returns false on clean EOF before the first byte; throws nothing.
// Partial frames and read errors also return false — the connection is
// unusable either way.
bool read_all(int fd, char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, const std::string& payload) {
  unsigned char header[4];
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(size >> 24);
  header[1] = static_cast<unsigned char>(size >> 16);
  header[2] = static_cast<unsigned char>(size >> 8);
  header[3] = static_cast<unsigned char>(size);
  return write_all(fd, reinterpret_cast<const char*>(header), 4) &&
         write_all(fd, payload.data(), payload.size());
}

enum class FrameStatus { Ok, Eof, TooLarge };

FrameStatus read_frame(int fd, std::string& payload) {
  unsigned char header[4];
  if (!read_all(fd, reinterpret_cast<char*>(header), 4)) return FrameStatus::Eof;
  const std::uint32_t size = (static_cast<std::uint32_t>(header[0]) << 24) |
                             (static_cast<std::uint32_t>(header[1]) << 16) |
                             (static_cast<std::uint32_t>(header[2]) << 8) |
                             static_cast<std::uint32_t>(header[3]);
  if (size > kMaxFrameBytes) return FrameStatus::TooLarge;
  payload.resize(size);
  if (size > 0 && !read_all(fd, payload.data(), size)) return FrameStatus::Eof;
  return FrameStatus::Ok;
}

}  // namespace

SocketServer::SocketServer(const ServerOptions& options)
    : options_(options), service_(std::make_unique<AssessmentService>(options.service)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "SocketServer: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw PreconditionError(strf("SocketServer: cannot listen on port %u: %s",
                                 static_cast<unsigned>(options_.port),
                                 std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "SocketServer: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketServer::run() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stop_.load() && errno == EINTR) continue;
      break;  // stop() shut the listener down (or it failed terminally)
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    if (active_connections_.load() >= options_.max_connections) {
      // Refuse above the connection cap with a structured frame so the
      // client sees backpressure, not a silent hangup.
      write_frame(fd, error_response("", ErrorCode::Overload,
                                     "too many connections; retry later"));
      ::close(fd);
      continue;
    }
    ++active_connections_;
    {
      std::lock_guard<std::mutex> lk(conn_m_);
      conn_fds_.push_back(fd);
    }
    threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Wind down: unblock connection threads still waiting on reads, then join.
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void SocketServer::stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SocketServer::serve_connection(int fd) {
  std::string request;
  for (;;) {
    const FrameStatus status = read_frame(fd, request);
    if (status == FrameStatus::Eof) break;
    if (status == FrameStatus::TooLarge) {
      write_frame(fd, error_response("", ErrorCode::Parse,
                                     strf("request frame exceeds %zu bytes",
                                          kMaxFrameBytes)));
      break;
    }
    if (!write_frame(fd, service_->handle(request))) break;
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  --active_connections_;
}

SocketClient::SocketClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd_ >= 0, "SocketClient: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          strf("SocketClient: '%s' is not an IPv4 address", host.c_str()));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw PreconditionError(strf("SocketClient: cannot connect to %s:%u: %s",
                                 host.c_str(), static_cast<unsigned>(port),
                                 std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SocketClient::roundtrip(const std::string& request) {
  require(request.size() <= kMaxFrameBytes, "SocketClient: request too large");
  require(write_frame(fd_, request), "SocketClient: connection lost while sending");
  std::string response;
  require(read_frame(fd_, response) == FrameStatus::Ok,
          "SocketClient: connection lost while receiving");
  return response;
}

}  // namespace ipass::serve

#else  // _WIN32

namespace ipass::serve {

SocketServer::SocketServer(const ServerOptions& options) : options_(options) {
  throw PreconditionError("SocketServer: POSIX sockets unavailable on this platform");
}
SocketServer::~SocketServer() = default;
void SocketServer::run() {}
void SocketServer::stop() {}
void SocketServer::serve_connection(int) {}

SocketClient::SocketClient(const std::string&, std::uint16_t) {
  throw PreconditionError("SocketClient: POSIX sockets unavailable on this platform");
}
SocketClient::~SocketClient() = default;
std::string SocketClient::roundtrip(const std::string&) { return {}; }

}  // namespace ipass::serve

#endif
