#include "serve/socket.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

namespace ipass::serve {

const char* transport_status_name(TransportStatus status) {
  switch (status) {
    case TransportStatus::Ok: return "ok";
    case TransportStatus::SendError: return "send error (connection lost while sending)";
    case TransportStatus::NoResponse:
      return "no response (connection closed before any response byte)";
    case TransportStatus::TruncatedResponse:
      return "truncated response (connection lost mid-response)";
    case TransportStatus::OversizedResponse:
      return "oversized response frame";
  }
  return "?";
}

}  // namespace ipass::serve

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/metrics.hpp"

namespace ipass::serve {

namespace {

// Server-side transport counters, resolved once.  Only SocketServer records
// here — the shared frame helpers stay metric-free so clients and tests
// don't pollute the server's picture of its own wire.
struct SocketMetrics {
  metrics::Counter& connections_accepted;
  metrics::Counter& connections_refused;
  metrics::Counter& frames_in;
  metrics::Counter& frames_out;
  metrics::Counter& bytes_in;
  metrics::Counter& bytes_out;
  metrics::Counter& truncated_frames;
  metrics::Counter& oversized_frames;

  static SocketMetrics& instance() {
    auto& r = metrics::global_metrics();
    static SocketMetrics m{
        r.counter("serve_socket_connections_accepted_total"),
        r.counter("serve_socket_connections_refused_total"),
        r.counter("serve_socket_frames_in_total"),
        r.counter("serve_socket_frames_out_total"),
        r.counter("serve_socket_bytes_in_total"),
        r.counter("serve_socket_bytes_out_total"),
        r.counter("serve_socket_truncated_frames_total"),
        r.counter("serve_socket_oversized_frames_total"),
    };
    return m;
  }
};

// Reads until `size` bytes arrived, EOF, or an unrecoverable error; returns
// the byte count actually read.
std::size_t read_upto(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

bool write_bytes(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string frame_bytes(const std::string& payload) {
  std::string wire;
  wire.reserve(4 + payload.size());
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  wire.push_back(static_cast<char>(size >> 24));
  wire.push_back(static_cast<char>(size >> 16));
  wire.push_back(static_cast<char>(size >> 8));
  wire.push_back(static_cast<char>(size));
  wire += payload;
  return wire;
}

bool write_frame(int fd, const std::string& payload) {
  const std::string wire = frame_bytes(payload);
  return write_bytes(fd, wire.data(), wire.size());
}

FrameStatus read_frame(int fd, std::string& payload) {
  unsigned char header[4];
  const std::size_t header_got = read_upto(fd, reinterpret_cast<char*>(header), 4);
  if (header_got == 0) return FrameStatus::Eof;  // clean end of stream
  if (header_got < 4) return FrameStatus::Truncated;
  const std::uint32_t size = (static_cast<std::uint32_t>(header[0]) << 24) |
                             (static_cast<std::uint32_t>(header[1]) << 16) |
                             (static_cast<std::uint32_t>(header[2]) << 8) |
                             static_cast<std::uint32_t>(header[3]);
  if (size > kMaxFrameBytes) return FrameStatus::TooLarge;
  payload.resize(size);
  if (size > 0 && read_upto(fd, payload.data(), size) < size) {
    return FrameStatus::Truncated;
  }
  return FrameStatus::Ok;
}

SocketServer::SocketServer(const ServerOptions& options)
    : options_(options), service_(std::make_unique<AssessmentService>(options.service)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "SocketServer: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw PreconditionError(strf("SocketServer: cannot listen on port %u: %s",
                                 static_cast<unsigned>(options_.port),
                                 std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "SocketServer: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketServer::run() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stop_.load() && errno == EINTR) continue;
      break;  // stop() shut the listener down (or it failed terminally)
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    if (active_connections_.load() >= options_.max_connections) {
      // Refuse above the connection cap with a structured frame so the
      // client sees backpressure, not a silent hangup.
      SocketMetrics::instance().connections_refused.add();
      write_frame(fd, error_response("", ErrorCode::Overload,
                                     "too many connections; retry later"));
      ::close(fd);
      continue;
    }
    SocketMetrics::instance().connections_accepted.add();
    ++active_connections_;
    {
      std::lock_guard<std::mutex> lk(conn_m_);
      conn_fds_.push_back(fd);
    }
    threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Graceful drain: stop admitting (new frames on open connections get
  // structured refusals), let every already-admitted request finish, make
  // the journal durable, then release the connections.
  service_->begin_drain();
  const bool drained = service_->await_drained(
      std::chrono::milliseconds(options_.drain_timeout_ms));
  service_->flush_journal();
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    for (const int fd : conn_fds_) {
      // A clean drain half-closes: pending response writes still go out and
      // the peer sees EOF on its next read.  A timed-out drain hard-closes.
      ::shutdown(fd, drained ? SHUT_RD : SHUT_RDWR);
    }
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void SocketServer::stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SocketServer::serve_connection(int fd) {
  SocketMetrics& sm = SocketMetrics::instance();
  std::string request;
  for (;;) {
    const FrameStatus status = read_frame(fd, request);
    if (status == FrameStatus::Eof) break;
    if (status == FrameStatus::Truncated) {
      // Best-effort: the peer may already be gone, but when only its write
      // side died the structured error tells it the request never reached
      // an engine (a retry is unconditionally safe).
      sm.truncated_frames.add();
      write_frame(fd, error_response("", ErrorCode::Parse,
                                     "truncated request frame: connection lost "
                                     "mid-frame; the request was not processed"));
      break;
    }
    if (status == FrameStatus::TooLarge) {
      sm.oversized_frames.add();
      write_frame(fd, error_response("", ErrorCode::Parse,
                                     strf("request frame exceeds %zu bytes",
                                          kMaxFrameBytes)));
      break;
    }
    sm.frames_in.add();
    sm.bytes_in.add(request.size());
    const std::string response = service_->handle(request);
    if (!write_frame(fd, response)) break;
    sm.frames_out.add();
    sm.bytes_out.add(response.size());
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  --active_connections_;
}

SocketClient::SocketClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd_ >= 0, "SocketClient: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw PreconditionError(
        strf("SocketClient: '%s' is not an IPv4 address", host.c_str()));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw PreconditionError(strf("SocketClient: cannot connect to %s:%u: %s",
                                 host.c_str(), static_cast<unsigned>(port),
                                 std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

TransportStatus SocketClient::try_roundtrip(const std::string& request,
                                            std::string& response) {
  require(request.size() <= kMaxFrameBytes, "SocketClient: request too large");
  if (!write_frame(fd_, request)) return TransportStatus::SendError;
  switch (read_frame(fd_, response)) {
    case FrameStatus::Ok: return TransportStatus::Ok;
    case FrameStatus::Eof: return TransportStatus::NoResponse;
    case FrameStatus::Truncated: return TransportStatus::TruncatedResponse;
    case FrameStatus::TooLarge: return TransportStatus::OversizedResponse;
  }
  return TransportStatus::NoResponse;
}

std::string SocketClient::roundtrip(const std::string& request) {
  std::string response;
  const TransportStatus status = try_roundtrip(request, response);
  require(status == TransportStatus::Ok,
          strf("SocketClient: %s", transport_status_name(status)));
  return response;
}

}  // namespace ipass::serve

#else  // _WIN32

namespace ipass::serve {

FrameStatus read_frame(int, std::string&) { return FrameStatus::Eof; }
bool write_frame(int, const std::string&) { return false; }
bool write_bytes(int, const char*, std::size_t) { return false; }
std::string frame_bytes(const std::string& payload) {
  std::string wire;
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  wire.push_back(static_cast<char>(size >> 24));
  wire.push_back(static_cast<char>(size >> 16));
  wire.push_back(static_cast<char>(size >> 8));
  wire.push_back(static_cast<char>(size));
  wire += payload;
  return wire;
}

SocketServer::SocketServer(const ServerOptions& options) : options_(options) {
  throw PreconditionError("SocketServer: POSIX sockets unavailable on this platform");
}
SocketServer::~SocketServer() = default;
void SocketServer::run() {}
void SocketServer::stop() {}
void SocketServer::serve_connection(int) {}

SocketClient::SocketClient(const std::string&, std::uint16_t) {
  throw PreconditionError("SocketClient: POSIX sockets unavailable on this platform");
}
SocketClient::~SocketClient() = default;
std::string SocketClient::roundtrip(const std::string&) { return {}; }
TransportStatus SocketClient::try_roundtrip(const std::string&, std::string&) {
  return TransportStatus::NoResponse;
}

}  // namespace ipass::serve

#endif
