#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/jsonfmt.hpp"
#include "common/metrics.hpp"
#include "common/strfmt.hpp"
#include "core/pareto.hpp"
#include "core/sensitivity.hpp"
#include "gps/bom.hpp"

namespace ipass::serve {

namespace {

// Deadline bookkeeping for one request.  The clock starts at admission —
// queue wait counts against the deadline, exactly like a client timeout
// would.  A fault-injected deadline is "already expired": it fires at the
// first checkpoint, so the resulting response is deterministic.
struct DeadlineGuard {
  std::chrono::steady_clock::time_point start;
  std::int64_t limit_ms = 0;
  bool forced = false;

  void check(const char* stage) const {
    if (limit_ms <= 0 && !forced) return;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (forced || elapsed >= limit_ms) {
      // No measured time in the message: responses must not depend on it.
      throw PreconditionError(
          strf("serve request: deadline of %lld ms exceeded %s",
               static_cast<long long>(limit_ms), stage),
          ErrorCode::Deadline);
    }
  }
};

void append_buildup_json(std::string& out, const std::string& name,
                         const core::BuildUpSummary& s, bool has_frontier,
                         bool frontier) {
  out += "{\"name\": \"";
  out += json_escape(name);
  out += "\"";
  const auto field = [&](const char* key, double v) {
    out += ", \"";
    out += key;
    out += "\": ";
    out += json_number(v);
  };
  field("performance", s.performance);
  field("module_area_mm2", s.module_area_mm2);
  field("area_rel", s.area_rel);
  field("shipped_fraction", s.shipped_fraction);
  field("direct_cost", s.direct_cost);
  field("yield_loss_per_shipped", s.yield_loss_per_shipped);
  field("nre_per_shipped", s.nre_per_shipped);
  field("final_cost_per_shipped", s.final_cost_per_shipped);
  field("cost_rel", s.cost_rel);
  field("fom", s.fom);
  if (has_frontier) {
    out += ", \"frontier\": ";
    out += frontier ? "true" : "false";
  }
  out += "}";
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

// Service-level global metrics, resolved once (allocation-free afterwards).
// Mirrors of per-instance ServiceStats plus the stage-latency histograms the
// per-request traces feed.
struct ServiceMetrics {
  metrics::Counter& admitted;
  metrics::Counter& completed;
  metrics::Counter& ok;
  metrics::Counter& errors;
  metrics::Counter& overloaded;
  metrics::Counter& degraded;
  metrics::Counter& recovered;
  metrics::Counter& health_probes;
  metrics::Counter& stats_probes;
  metrics::Counter& slow_requests;
  metrics::Gauge& queue_depth;
  metrics::Histogram& parse_ns;
  metrics::Histogram& queue_wait_ns;
  metrics::Histogram& cache_ns;
  metrics::Histogram& evaluate_ns;
  metrics::Histogram& serialize_ns;
  metrics::Histogram& journal_append_ns;
  metrics::Histogram& total_ns;

  static ServiceMetrics& instance() {
    auto& r = metrics::global_metrics();
    static ServiceMetrics m{
        r.counter("serve_requests_admitted_total"),
        r.counter("serve_requests_completed_total"),
        r.counter("serve_requests_ok_total"),
        r.counter("serve_requests_error_total"),
        r.counter("serve_requests_overloaded_total"),
        r.counter("serve_requests_degraded_total"),
        r.counter("serve_requests_recovered_total"),
        r.counter("serve_probes_health_total"),
        r.counter("serve_probes_stats_total"),
        r.counter("serve_slow_requests_total"),
        r.gauge("serve_queue_depth"),
        r.histogram("serve_request_parse_ns"),
        r.histogram("serve_request_queue_wait_ns"),
        r.histogram("serve_request_cache_ns"),
        r.histogram("serve_request_evaluate_ns"),
        r.histogram("serve_request_serialize_ns"),
        r.histogram("serve_request_journal_append_ns"),
        r.histogram("serve_request_total_ns"),
    };
    return m;
  }
};

}  // namespace

AssessmentService::AssessmentService(const ServiceOptions& options)
    : options_(options),
      registry_(kits::builtin_kit_registry()),
      bom_(gps::gps_front_end_bom()),
      cache_(options.cache_capacity),
      traces_(options.trace_capacity > 0 ? options.trace_capacity : 1) {
  require(options_.workers >= 1 && options_.workers <= 256,
          "AssessmentService: workers must be in [1, 256]");
  require(options_.queue_limit >= 1, "AssessmentService: queue_limit must be >= 1");
  if (!options_.journal_path.empty()) {
    Journal::Options jopts;
    jopts.sync = options_.journal_sync;
    journal_ = std::make_unique<Journal>(options_.journal_path, jopts);
    next_seq_ = journal_->recovered().next_seq;
    // Re-execute the admitted-but-uncommitted suffix synchronously, before
    // any worker exists: the regenerated responses land in the journal with
    // their original sequence numbers, byte-identical to what the crashed
    // process would have produced (responses are a pure function of request
    // text, seq and options).
    recover_journal();
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void AssessmentService::recover_journal() {
  for (const JournalEntry& entry : journal_->recovered().entries) {
    if (entry.committed) continue;
    Task task;
    task.seq = entry.seq;
    task.text = entry.request;
    task.enqueued = std::chrono::steady_clock::now();
    // Recovery is observability-quiet: no trace (the original timings are
    // gone with the crashed process) — only the recovered counters move.
    Outcome outcome = process(task, nullptr);
    journal_->append_commit(task.seq, outcome.body);
    ++stats_.admitted;
    ++stats_.completed;
    ++stats_.recovered;
    ServiceMetrics::instance().recovered.add();
    if (outcome.ok) {
      ++stats_.ok;
    } else {
      ++stats_.errors;
    }
    if (outcome.degraded) ++stats_.degraded;
  }
  journal_->flush();
}

AssessmentService::~AssessmentService() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<std::string> AssessmentService::submit(std::string request_text) {
  std::promise<std::string> promise;
  std::future<std::string> fut = promise.get_future();
  // Probes bypass admission entirely: no sequence number, no queue slot, no
  // journal record — a readiness check or a metrics scrape must not perturb
  // the deterministic request stream.
  const ProbeKind probe = probe_kind(request_text);
  if (probe != ProbeKind::None) {
    std::string response;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (probe == ProbeKind::Health) {
        ++stats_.health;
        ServiceMetrics::instance().health_probes.add();
        response = health_response();
      } else {
        ++stats_.stats_probes;
        ServiceMetrics::instance().stats_probes.add();
        response = stats_response();
      }
    }
    promise.set_value(std::move(response));
    return fut;
  }
  bool refused = false;
  ErrorCode refusal_code = ErrorCode::Overload;
  std::string refusal;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_) {
      refused = true;
      refusal = "service is shutting down";
    } else if (draining_) {
      refused = true;
      refusal = "service is draining; retry against another instance or later";
      ++stats_.overloaded;
      ServiceMetrics::instance().overloaded.add();
    } else if (queue_.size() + running_ >= options_.queue_limit) {
      refused = true;
      refusal = "service overloaded; retry later";
      ++stats_.overloaded;
      ServiceMetrics::instance().overloaded.add();
    } else {
      Task task;
      task.seq = next_seq_++;
      task.text = std::move(request_text);
      task.shed = options_.degrade_depth > 0 &&
                  queue_.size() + running_ >= options_.degrade_depth;
      task.enqueued = std::chrono::steady_clock::now();
      if (journal_ != nullptr) {
        // Write-ahead: the admit record must be durable before the request
        // can produce any effect.  Appending under the admission lock means
        // file order == seq order for admits.  An append failure (disk
        // full) refuses the request rather than running it unjournaled.
        try {
          journal_->append_admit(task.seq, task.text);
        } catch (const std::exception& e) {
          refused = true;
          refusal_code = ErrorCode::Internal;
          refusal = strf("journal append failed: %s", e.what());
          next_seq_ = task.seq;  // the seq was never admitted; reuse it
          ++stats_.overloaded;
          ServiceMetrics::instance().overloaded.add();
        }
      }
      if (!refused) {
        task.promise = std::move(promise);
        queue_.push_back(std::move(task));
        ++stats_.admitted;
        ServiceMetrics::instance().admitted.add();
        const std::uint64_t depth =
            static_cast<std::uint64_t>(queue_.size() + running_);
        if (depth > stats_.queue_high_water) stats_.queue_high_water = depth;
        ServiceMetrics::instance().queue_depth.set(
            static_cast<std::int64_t>(depth));
      }
    }
  }
  if (refused) {
    // The client correlates by response order; an admission refusal never
    // parsed the request, so it carries no id.
    promise.set_value(error_response("", refusal_code, refusal));
  } else {
    cv_.notify_one();
  }
  return fut;
}

std::string AssessmentService::handle(const std::string& request_text) {
  return submit(request_text).get();
}

ServiceStats AssessmentService::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  ServiceStats out = stats_;
  out.cache = cache_.stats();
  return out;
}

void AssessmentService::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    RequestTrace trace;
    trace.seq = task.seq;
    trace.queue_wait_ns = ns_since(task.enqueued);
    Outcome outcome = process(task, &trace);
    // Commit BEFORE the future resolves: once a client can observe the
    // response, a crash must not forget it (write-ahead on both edges).
    // Commits from concurrent workers may interleave out of seq order in
    // the file; recovery orders by seq.
    if (journal_ != nullptr) {
      const auto journal_start = std::chrono::steady_clock::now();
      try {
        journal_->append_commit(task.seq, outcome.body);
      } catch (const std::exception&) {
        // A failed commit append (disk full) leaves the request admitted-
        // but-uncommitted: the next boot re-executes it, which is safe.
      }
      trace.journal_append_ns = ns_since(journal_start);
    }
    trace.ok = outcome.ok;
    trace.degraded = outcome.degraded;
    trace.error = outcome.error;
    trace.total_ns = ns_since(task.enqueued);
    bool drained_now = false;
    {
      // Release the slot and settle the counters BEFORE delivering the
      // response: a caller woken by the future must observe the slot free
      // (the replay window-throttling guarantee) and the stats settled.
      std::lock_guard<std::mutex> lk(m_);
      --running_;
      ++stats_.completed;
      if (outcome.ok) {
        ++stats_.ok;
      } else {
        ++stats_.errors;
        switch (outcome.error) {
          case ErrorCode::Deadline:
            ++stats_.deadline_exceeded;
            break;
          case ErrorCode::Parse:
            ++stats_.parse_errors;
            break;
          case ErrorCode::Validation:
            ++stats_.validation_errors;
            break;
          default:
            ++stats_.internal_errors;
            break;
        }
      }
      if (outcome.degraded) ++stats_.degraded;
      ServiceMetrics::instance().queue_depth.set(
          static_cast<std::int64_t>(queue_.size() + running_));
      drained_now = queue_.empty() && running_ == 0;
    }
    finish_trace(trace);
    if (drained_now) drained_cv_.notify_all();
    task.promise.set_value(std::move(outcome.body));
  }
}

void AssessmentService::finish_trace(RequestTrace& trace) const {
  ServiceMetrics& m = ServiceMetrics::instance();
  m.completed.add();
  if (trace.ok) {
    m.ok.add();
  } else {
    m.errors.add();
  }
  if (trace.degraded) m.degraded.add();
  m.parse_ns.record(trace.parse_ns);
  m.queue_wait_ns.record(trace.queue_wait_ns);
  m.cache_ns.record(trace.cache_ns);
  m.evaluate_ns.record(trace.evaluate_ns);
  m.serialize_ns.record(trace.serialize_ns);
  m.journal_append_ns.record(trace.journal_append_ns);
  m.total_ns.record(trace.total_ns);
  traces_.push(trace);
  if (options_.slow_request_ms >= 0 &&
      trace.total_ns >=
          static_cast<std::uint64_t>(options_.slow_request_ms) * 1000000ull) {
    m.slow_requests.add();
    // One line, stderr only: the threshold and the timings can never reach
    // a response byte.
    std::fprintf(stderr, "%s\n", trace_to_string(trace).c_str());
  }
}

void AssessmentService::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(m_);
    draining_ = true;
  }
  drained_cv_.notify_all();
}

bool AssessmentService::await_drained(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(m_);
  return drained_cv_.wait_for(lk, timeout,
                              [&] { return queue_.empty() && running_ == 0; });
}

void AssessmentService::flush_journal() {
  if (journal_ != nullptr) journal_->flush();
}

std::string AssessmentService::health_response() const {
  // Caller holds m_.  A single line mirroring the response format; every
  // field is a cheap counter read, so probes are safe at any frequency.
  const CompiledStudyCache::Stats cache = cache_.stats();
  return strf(
      "{\"status\": \"ok\", \"version\": \"%s\", \"queue_depth\": %zu, "
      "\"running\": %zu, \"workers\": %u, \"admitted\": %llu, "
      "\"completed\": %llu, \"cache_size\": %zu, \"cache_hits\": %llu, "
      "\"journal\": %s, \"journal_lag\": %llu, \"draining\": %s}",
      kServeVersion, queue_.size(), running_, options_.workers,
      static_cast<unsigned long long>(stats_.admitted),
      static_cast<unsigned long long>(stats_.completed), cache_.size(),
      static_cast<unsigned long long>(cache.hits),
      journal_ != nullptr ? "true" : "false",
      static_cast<unsigned long long>(journal_ != nullptr ? journal_->lag() : 0),
      draining_ ? "true" : "false");
}

std::string AssessmentService::stats_response() const {
  // Caller holds m_.  The full operational picture in one line: admission
  // and outcome counters (with the per-taxonomy error breakdown), queue
  // pressure, cache behavior, journal position and the trace ring — every
  // field a cheap counter read, safe to scrape at any frequency.
  const CompiledStudyCache::Stats cache = cache_.stats();
  const auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::string out = strf(
      "{\"status\": \"ok\", \"kind\": \"stats\", \"version\": \"%s\", "
      "\"queue_depth\": %zu, \"queue_high_water\": %llu, \"running\": %zu, "
      "\"workers\": %u, \"admitted\": %llu, \"completed\": %llu, "
      "\"ok\": %llu, \"errors\": %llu, \"overloaded\": %llu, "
      "\"degraded\": %llu, \"deadline_exceeded\": %llu, "
      "\"parse_errors\": %llu, \"validation_errors\": %llu, "
      "\"internal_errors\": %llu, \"recovered\": %llu, "
      "\"health_probes\": %llu, \"stats_probes\": %llu",
      kWireVersion, queue_.size(), u64(stats_.queue_high_water), running_,
      options_.workers, u64(stats_.admitted), u64(stats_.completed),
      u64(stats_.ok), u64(stats_.errors), u64(stats_.overloaded),
      u64(stats_.degraded), u64(stats_.deadline_exceeded),
      u64(stats_.parse_errors), u64(stats_.validation_errors),
      u64(stats_.internal_errors), u64(stats_.recovered), u64(stats_.health),
      u64(stats_.stats_probes));
  out += strf(
      ", \"cache\": {\"size\": %zu, \"hits\": %llu, \"misses\": %llu, "
      "\"waits\": %llu, \"evictions\": %llu, \"failures\": %llu}",
      cache_.size(), u64(cache.hits), u64(cache.misses), u64(cache.waits),
      u64(cache.evictions), u64(cache.failures));
  out += strf(
      ", \"journal\": {\"enabled\": %s, \"admits\": %llu, \"commits\": %llu, "
      "\"lag\": %llu}",
      journal_ != nullptr ? "true" : "false",
      u64(journal_ != nullptr ? journal_->admit_count() : 0),
      u64(journal_ != nullptr ? journal_->commit_count() : 0),
      u64(journal_ != nullptr ? journal_->lag() : 0));
  out += strf(
      ", \"traces\": {\"capacity\": %zu, \"recorded\": %llu}, "
      "\"draining\": %s}",
      traces_.capacity(), u64(traces_.pushed()),
      draining_ ? "true" : "false");
  return out;
}

AssessmentService::Outcome AssessmentService::process(const Task& task,
                                                      RequestTrace* trace) const {
  std::string id;
  const auto fail = [&](ErrorCode code, const std::string& message) {
    Outcome out;
    out.body = error_response(id, code, message);
    out.ok = false;
    out.degraded = false;
    out.error = code;
    return out;
  };
  try {
    const auto parse_start = std::chrono::steady_clock::now();
    if (options_.faults.fires(task.seq, FaultKind::Parse)) {
      throw PreconditionError("serve request: injected parse fault",
                              ErrorCode::Parse);
    }
    const AssessmentRequest request = parse_request(task.text);
    if (trace != nullptr) trace->parse_ns = ns_since(parse_start);
    id = request.id;
    return run_assessment(task, request, trace);
  } catch (const PreconditionError& e) {
    // Unspecified precondition failures from the engines are contract
    // violations of the request's inputs — validation on the wire.
    const ErrorCode code =
        e.code() == ErrorCode::Unspecified ? ErrorCode::Validation : e.code();
    return fail(code, e.what());
  } catch (const std::exception& e) {
    return fail(ErrorCode::Internal, e.what());
  } catch (...) {
    return fail(ErrorCode::Internal, "unknown error");
  }
}

AssessmentService::Outcome AssessmentService::run_assessment(
    const Task& task, const AssessmentRequest& request,
    RequestTrace* trace) const {
  const FaultPlan& faults = options_.faults;
  const DeadlineGuard deadline{task.enqueued, request.deadline_ms,
                               faults.fires(task.seq, FaultKind::Deadline)};
  deadline.check("after parse");

  if (request.bom != "gps-front-end") {
    throw PreconditionError(
        strf("serve request: unknown bom '%s' (available: 'gps-front-end')",
             request.bom.c_str()),
        ErrorCode::Validation);
  }
  const kits::ProcessKit& reference = registry_.at(request.reference);
  for (const kits::KitVariant& v : reference.variants) {
    if (v.policy != core::PassivePolicy::AllSmd) {
      throw PreconditionError(
          strf("serve request: reference kit '%s' must be an all-SMD carrier",
               reference.name.c_str()),
          ErrorCode::Validation);
    }
  }
  const kits::ProcessKit& kit =
      request.has_inline_kit ? request.inline_kit : registry_.at(request.kit_name);
  const bool is_reference = !request.has_inline_kit && kit.name == reference.name;
  const std::size_t own_offset = is_reference ? 0 : reference.variants.size();

  const std::string key = study_cache_key(request);
  if (faults.fires(task.seq, FaultKind::Evict)) cache_.evict(key);

  // Same study shape as kits::sweep_kits: the reference kit's build-ups
  // anchor the 100% rows, the requested kit's variants follow.
  const auto cache_start = std::chrono::steady_clock::now();
  CacheOutcome cache_outcome = CacheOutcome::None;
  const std::shared_ptr<const core::CompiledStudy> study = cache_.get_or_compile(
      key,
      [&] {
        std::vector<core::BuildUp> buildups = kits::make_buildups(reference);
        if (!is_reference) {
          for (core::BuildUp& b :
               kits::make_buildups(kit, static_cast<int>(buildups.size()) + 1)) {
            buildups.push_back(std::move(b));
          }
        }
        return core::compile_study(bom_, std::move(buildups),
                                   kits::apply_passives(kit), request.scope);
      },
      &cache_outcome);
  if (trace != nullptr) {
    trace->cache_ns = ns_since(cache_start);
    trace->cache = cache_outcome;
  }
  deadline.check("after compile");

  if (faults.fires(task.seq, FaultKind::Stall)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(faults.stall_ms));
    deadline.check("after compile");
  }
  if (faults.fires(task.seq, FaultKind::WorkerThrow)) {
    throw std::runtime_error("injected worker fault");
  }

  const auto evaluate_start = std::chrono::steady_clock::now();
  const std::size_t n = study->buildups.size();
  const core::AssessmentPipeline pipeline(study);
  core::AssessmentInputs point;
  point.weights = request.weights;
  if (request.volume > 0.0) {
    point.production.reserve(n);
    for (const core::BuildUp& b : study->buildups) {
      core::ProductionData pd = b.production;
      pd.volume = request.volume;
      point.production.push_back(pd);
    }
  }
  const core::BatchAssessmentResult batch =
      pipeline.evaluate({point}, options_.eval_threads);
  deadline.check("after evaluation");

  // Optional stages: shed under load (admission decided), flagged in the
  // response so the client knows the answer is the mandatory core only.
  bool degraded = false;
  std::vector<bool> frontier;
  if (request.want_pareto) {
    if (task.shed) {
      degraded = true;
    } else {
      frontier.resize(n);
      for (const core::ParetoEntry& e : core::pareto_analysis(batch, 0)) {
        frontier[e.index] = !e.dominated;
      }
      deadline.check("after pareto");
    }
  }

  core::SensitivityReport sensitivity;
  bool have_sensitivity = false;
  std::size_t sensitivity_target = 0;
  if (request.want_sensitivity) {
    if (task.shed) {
      degraded = true;
    } else {
      sensitivity_target = own_offset;
      for (std::size_t b = own_offset; b < n; ++b) {
        if (batch.at(0, b).fom > batch.at(0, sensitivity_target).fom) {
          sensitivity_target = b;
        }
      }
      core::BuildUp target = study->buildups[sensitivity_target];
      if (request.volume > 0.0) target.production.volume = request.volume;
      core::SensitivityOptions opts;
      opts.threads = options_.eval_threads;
      sensitivity = core::cost_sensitivity(bom_, target, kits::apply_passives(kit), opts);
      have_sensitivity = true;
      deadline.check("after sensitivity");
    }
  }
  if (trace != nullptr) trace->evaluate_ns = ns_since(evaluate_start);

  const auto serialize_start = std::chrono::steady_clock::now();
  std::string out;
  out.reserve(1024);
  out += "{\"id\": \"";
  out += json_escape(request.id);
  out += "\", \"status\": \"ok\", \"degraded\": ";
  out += degraded ? "true" : "false";
  out += ", \"kit\": \"";
  out += json_escape(kit.name);
  out += "\", \"reference\": \"";
  out += json_escape(reference.name);
  out += "\", \"scope\": \"";
  out += request.scope == core::PipelineScope::Full ? "full" : "cost-only";
  out += strf("\", \"winner\": %zu, \"buildups\": [", batch.winners[0]);
  for (std::size_t b = 0; b < n; ++b) {
    if (b > 0) out += ", ";
    append_buildup_json(out, study->buildups[b].name, batch.at(0, b),
                        !frontier.empty(), !frontier.empty() && frontier[b]);
  }
  out += "]";
  if (have_sensitivity) {
    out += ", \"sensitivity\": {\"buildup\": \"";
    out += json_escape(study->buildups[sensitivity_target].name);
    out += "\", \"rows\": [";
    for (std::size_t i = 0; i < sensitivity.rows.size(); ++i) {
      const core::SensitivityRow& row = sensitivity.rows[i];
      if (i > 0) out += ", ";
      out += "{\"input\": \"";
      out += json_escape(row.input);
      out += "\", \"elasticity\": ";
      out += json_number(row.elasticity);
      out += ", \"base_cost\": ";
      out += json_number(row.base_cost);
      out += ", \"perturbed_cost\": ";
      out += json_number(row.perturbed_cost);
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  if (trace != nullptr) trace->serialize_ns = ns_since(serialize_start);
  Outcome result;
  result.body = std::move(out);
  result.ok = true;
  result.degraded = degraded;
  return result;
}

}  // namespace ipass::serve
