// Request-log replay: feed a JSONL request log through an
// AssessmentService and collect the response lines in request order.
//
// This is the determinism harness: because a response is a pure function
// of (request text, admission sequence number, service options), replaying
// the same log against the same options — with any worker count, any
// IPASS_THREADS, with or without a warm cache — yields byte-identical
// response streams.  The submission window is throttled below the
// service's queue_limit so admission control never refuses a request
// (an overload refusal depends on racing queue depth); for the same
// reason replay configurations leave degrade_depth at 0.
#pragma once

#include <string>
#include <vector>

#include "serve/service.hpp"

namespace ipass::serve {

// Submit every request line in order (at most `window` outstanding at a
// time; 0 = the service's queue_limit) and return the responses in the
// same order.
std::vector<std::string> replay(AssessmentService& service,
                                const std::vector<std::string>& requests,
                                std::size_t window = 0);

// Read a JSONL request log: one request per line, blank lines skipped.
// Malformed lines are NOT filtered — they belong in the log precisely to
// exercise the structured parse-error path.
std::vector<std::string> read_request_log(const std::string& path);

// Join response lines into the canonical response stream ("\n"-terminated
// lines) that the CI smoke diffs byte-for-byte.
std::string response_stream(const std::vector<std::string>& responses);

}  // namespace ipass::serve
