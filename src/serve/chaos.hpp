// Fault-injecting TCP proxy for chaos-testing the serve transport.
//
// ChaosTransport sits between a client and an upstream SocketServer and
// forwards frames in both directions, injecting transport faults from a
// seeded FaultPlan: torn frames (a prefix of the wire bytes, then a hard
// close), split writes (the frame delivered in tiny chunks), delays,
// connection resets and garbage bytes.  Every fault decision is a pure
// function of (plan seed, connection index, frame index, direction) — see
// FaultPlan::fires — so a chaos soak with a pinned seed kills the same
// frames on every run, which makes the ResilientClient's retry walk (and
// its backoff schedule) reproducible.
//
// The proxy is frame-aware on purpose: it re-frames rather than splices
// bytes, so a fault always lands on a well-defined frame boundary and the
// test can reason about exactly which request or response was lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/fault.hpp"

namespace ipass::serve {

struct ChaosOptions {
  std::uint16_t port = 0;  // 0 = ephemeral (read back via port())
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  FaultPlan faults;  // only the transport kinds (tear/split/delay/reset/garbage)
};

struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;  // frames forwarded intact (split/delayed count)
  std::uint64_t torn = 0;
  std::uint64_t split = 0;
  std::uint64_t delayed = 0;
  std::uint64_t resets = 0;
  std::uint64_t garbage = 0;
};

class ChaosTransport {
 public:
  // Binds and listens on 127.0.0.1 immediately; throws PreconditionError
  // when the port is unavailable (or on platforms without POSIX sockets).
  explicit ChaosTransport(const ChaosOptions& options);
  ~ChaosTransport();

  ChaosTransport(const ChaosTransport&) = delete;
  ChaosTransport& operator=(const ChaosTransport&) = delete;

  std::uint16_t port() const { return port_; }

  // Accept loop; returns after stop().  Run from a dedicated thread.
  void run();
  void stop();

  ChaosStats stats() const;

 private:
  void pump_connection(int client_fd, std::uint64_t conn_index);
  // Forward one frame over `fd`, consulting the plan at injection key
  // (conn, frame, direction).  Returns false when the fault killed the
  // connection (the caller stops pumping).
  bool forward(int fd, const std::string& payload, std::uint64_t key);

  const ChaosOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::mutex conn_m_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> threads_;
  mutable std::mutex stats_m_;
  ChaosStats stats_;
};

}  // namespace ipass::serve
