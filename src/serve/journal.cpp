#include "serve/journal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "common/crc32c.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/strfmt.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ipass::serve {

namespace {

std::uint32_t read_be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

std::uint64_t read_be64(const unsigned char* p) {
  return (static_cast<std::uint64_t>(read_be32(p)) << 32) | read_be32(p + 4);
}

void put_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_be64(std::string& out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out, static_cast<std::uint32_t>(v));
}

[[noreturn]] void reject(const std::string& path, const std::string& what) {
  throw PreconditionError(strf("journal '%s': %s", path.c_str(), what.c_str()),
                          ErrorCode::Validation);
}

constexpr std::size_t kHeaderBytes = 4;            // length prefix
constexpr std::size_t kTrailerBytes = 4;           // crc
constexpr std::size_t kMinRecordLen = 1 + 8;       // type + seq

// Process-wide journal activity, resolved once.  Appended-only counters (the
// recovered prefix is NOT replayed into them — `truncated` counts torn-tail
// bytes dropped at open, the one recovery-time signal worth alerting on).
struct JournalMetrics {
  metrics::Counter& admits;
  metrics::Counter& commits;
  metrics::Counter& bytes;
  metrics::Counter& fsyncs;
  metrics::Counter& truncated_bytes;

  static JournalMetrics& instance() {
    auto& r = metrics::global_metrics();
    static JournalMetrics m{
        r.counter("serve_journal_admits_total"),
        r.counter("serve_journal_commits_total"),
        r.counter("serve_journal_appended_bytes_total"),
        r.counter("serve_journal_fsyncs_total"),
        r.counter("serve_journal_truncated_bytes_total"),
    };
    return m;
  }
};

}  // namespace

JournalRecovery scan_journal(const std::string& path) {
  JournalRecovery out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;  // absent file == fresh journal
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t size = data.size();

  if (size < sizeof(kJournalMagic)) {
    // A crash can tear even the magic of a freshly created journal; a
    // partial magic prefix is recovered as empty.  Anything else is not a
    // journal at all.
    if (std::memcmp(data.data(), kJournalMagic, size) != 0) {
      throw PreconditionError(
          strf("journal '%s': bad magic (not an ipass journal)", path.c_str()),
          ErrorCode::Parse);
    }
    out.truncated_bytes = size;
    return out;
  }
  if (std::memcmp(data.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw PreconditionError(
        strf("journal '%s': bad magic (not an ipass journal)", path.c_str()),
        ErrorCode::Parse);
  }

  std::unordered_map<std::uint64_t, std::size_t> index;  // seq -> entries slot
  std::size_t offset = sizeof(kJournalMagic);
  std::size_t record = 0;
  for (;;) {
    if (size - offset < kHeaderBytes) break;  // torn tail (or clean end)
    const std::uint32_t len = read_be32(bytes + offset);
    // A zero or absurd length is the signature of a torn/corrupt append —
    // nothing after it can be trusted, so the tail is truncated here.
    if (len == 0 || len > kMaxJournalRecordBytes) break;
    if (size - offset < kHeaderBytes + len + kTrailerBytes) break;  // torn tail
    const unsigned char* body = bytes + offset + kHeaderBytes;
    const std::uint32_t stored_crc = read_be32(body + len);
    if (crc32c(body, len) != stored_crc) break;  // corrupt record: truncate

    // From here the record is bit-trustworthy; violations are structural.
    const unsigned char type = body[0];
    if (type != static_cast<unsigned char>(JournalRecordType::Admit) &&
        type != static_cast<unsigned char>(JournalRecordType::Commit)) {
      reject(path, strf("record %zu at offset %zu: unknown record type %u",
                        record, offset, static_cast<unsigned>(type)));
    }
    if (len < kMinRecordLen) {
      reject(path, strf("record %zu at offset %zu: length %u too short for its "
                        "sequence number",
                        record, offset, len));
    }
    const std::uint64_t seq = read_be64(body + 1);
    std::string text(reinterpret_cast<const char*>(body + kMinRecordLen),
                     len - kMinRecordLen);
    if (type == static_cast<unsigned char>(JournalRecordType::Admit)) {
      if (index.count(seq) != 0) {
        reject(path, strf("record %zu at offset %zu: duplicate admit for seq %llu",
                          record, offset,
                          static_cast<unsigned long long>(seq)));
      }
      index.emplace(seq, out.entries.size());
      JournalEntry entry;
      entry.seq = seq;
      entry.request = std::move(text);
      out.entries.push_back(std::move(entry));
      out.next_seq = std::max(out.next_seq, seq + 1);
    } else {
      const auto it = index.find(seq);
      if (it == index.end()) {
        reject(path,
               strf("record %zu at offset %zu: commit without admission for seq %llu",
                    record, offset, static_cast<unsigned long long>(seq)));
      }
      JournalEntry& entry = out.entries[it->second];
      if (entry.committed) {
        reject(path,
               strf("record %zu at offset %zu: duplicate commit for seq %llu",
                    record, offset, static_cast<unsigned long long>(seq)));
      }
      entry.committed = true;
      entry.response = std::move(text);
    }
    out.records.push_back({offset, static_cast<JournalRecordType>(type), seq});
    offset += kHeaderBytes + len + kTrailerBytes;
    ++record;
  }
  out.valid_bytes = offset;
  out.truncated_bytes = size - offset;
  for (const JournalEntry& e : out.entries) {
    if (e.committed) {
      ++out.committed_count;
    } else {
      ++out.uncommitted_count;
    }
  }
  return out;
}

std::string journal_response_stream(const std::string& path) {
  JournalRecovery rec = scan_journal(path);
  std::sort(rec.entries.begin(), rec.entries.end(),
            [](const JournalEntry& a, const JournalEntry& b) { return a.seq < b.seq; });
  std::string out;
  for (const JournalEntry& e : rec.entries) {
    if (!e.committed) continue;
    out += e.response;
    out += '\n';
  }
  return out;
}

Journal::Journal(const std::string& path) : Journal(path, Options()) {}

Journal::Journal(const std::string& path, const Options& options)
    : path_(path), options_(options), recovered_(scan_journal(path)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (recovered_.truncated_bytes > 0) {
    fs::resize_file(path_, recovered_.valid_bytes, ec);
    require(!ec, strf("journal '%s': cannot truncate torn tail: %s", path_.c_str(),
                      ec.message().c_str()));
    JournalMetrics::instance().truncated_bytes.add(recovered_.truncated_bytes);
  }
  const bool fresh = !fs::exists(path_, ec) || fs::file_size(path_, ec) == 0;
  file_ = std::fopen(path_.c_str(), "ab");
  require(file_ != nullptr,
          strf("journal '%s': cannot open for append", path_.c_str()));
  // Unbuffered: every append goes straight to the kernel, so a kill -9 can
  // tear at most the record being written (which recovery truncates).
  std::setvbuf(file_, nullptr, _IONBF, 0);
  if (fresh) {
    require(std::fwrite(kJournalMagic, 1, sizeof(kJournalMagic), file_) ==
                sizeof(kJournalMagic),
            strf("journal '%s': cannot write magic", path_.c_str()));
  }
  admits_ = recovered_.entries.size();
  commits_ = recovered_.committed_count;
}

Journal::~Journal() {
  if (file_ != nullptr) {
    flush();
    std::fclose(file_);
  }
}

void Journal::append_record(JournalRecordType type, std::uint64_t seq,
                            const std::string& body) {
  const std::size_t len = kMinRecordLen + body.size();
  require(len <= kMaxJournalRecordBytes,
          strf("journal '%s': record of %zu bytes exceeds the %zu-byte cap",
               path_.c_str(), len, kMaxJournalRecordBytes));
  std::string record;
  record.reserve(kHeaderBytes + len + kTrailerBytes);
  put_be32(record, static_cast<std::uint32_t>(len));
  record.push_back(static_cast<char>(type));
  put_be64(record, seq);
  record += body;
  put_be32(record, crc32c(record.data() + kHeaderBytes, len));

  std::lock_guard<std::mutex> lk(m_);
  require(std::fwrite(record.data(), 1, record.size(), file_) == record.size(),
          strf("journal '%s': append failed (disk full?)", path_.c_str()));
#ifndef _WIN32
  if (options_.sync) {
    ::fsync(::fileno(file_));
    JournalMetrics::instance().fsyncs.add();
  }
#endif
  JournalMetrics::instance().bytes.add(record.size());
  if (type == JournalRecordType::Admit) {
    ++admits_;
    JournalMetrics::instance().admits.add();
  } else {
    ++commits_;
    JournalMetrics::instance().commits.add();
  }
}

void Journal::append_admit(std::uint64_t seq, const std::string& request) {
  append_record(JournalRecordType::Admit, seq, request);
}

void Journal::append_commit(std::uint64_t seq, const std::string& response) {
  append_record(JournalRecordType::Commit, seq, response);
}

void Journal::flush() {
  std::lock_guard<std::mutex> lk(m_);
  std::fflush(file_);
#ifndef _WIN32
  ::fsync(::fileno(file_));
  JournalMetrics::instance().fsyncs.add();
#endif
}

std::uint64_t Journal::admit_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return admits_;
}

std::uint64_t Journal::commit_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return commits_;
}

std::uint64_t Journal::lag() const {
  std::lock_guard<std::mutex> lk(m_);
  return admits_ - commits_;
}

}  // namespace ipass::serve
