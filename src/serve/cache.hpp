// Keyed, size-bounded LRU cache of compiled studies with single-flight
// compilation.
//
// Entries are shared_ptr<const CompiledStudy>: a request that resolved its
// study keeps evaluating safely even if the entry is evicted mid-flight
// (the artifact dies with its last reference, never under a reader).  When
// several requests miss on the same key concurrently, exactly one compiles
// while the rest wait for that result (single-flight) — a cold burst of
// identical studies costs one MNA/area compilation, not N.  A failed
// compilation is NOT cached: the exception propagates to the compiling
// request and every waiter, and the next request retries.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/methodology.hpp"
#include "serve/trace.hpp"

namespace ipass::serve {

class CompiledStudyCache {
 public:
  using Compile = std::function<std::shared_ptr<const core::CompiledStudy>()>;

  // At most `capacity` ready entries are retained (least recently used
  // evicted first).  capacity must be >= 1.
  explicit CompiledStudyCache(std::size_t capacity);

  CompiledStudyCache(const CompiledStudyCache&) = delete;
  CompiledStudyCache& operator=(const CompiledStudyCache&) = delete;

  // Return the cached study for `key`, or run `compile` (outside the cache
  // lock) and cache its result.  Rethrows the compile exception to the
  // caller and to every single-flight waiter without caching it.  When
  // `outcome` is non-null it receives how this call was served (Hit, Miss,
  // or single-flight Wait) — the per-request trace's classification.
  std::shared_ptr<const core::CompiledStudy> get_or_compile(
      const std::string& key, const Compile& compile,
      CacheOutcome* outcome = nullptr);

  // Drop the ready entry for `key` (in-flight compilations are unaffected
  // and will insert when they finish).  Returns whether an entry existed.
  bool evict(const std::string& key);

  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;          // served from a ready entry
    std::uint64_t misses = 0;        // this caller ran the compile
    std::uint64_t waits = 0;         // joined another caller's compile
    std::uint64_t evictions = 0;     // LRU + explicit evict() removals
    std::uint64_t failures = 0;      // compiles that threw
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::CompiledStudy> study;
    std::uint64_t last_used = 0;
  };
  // One per in-flight compilation; waiters block on its own cv so a slow
  // compile never holds the cache lock.
  struct Inflight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const core::CompiledStudy> study;
    std::exception_ptr error;
  };

  void trim_locked();

  const std::size_t capacity_;
  mutable std::mutex m_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace ipass::serve
