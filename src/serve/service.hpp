// The fault-tolerant assessment service core: bounded-queue admission,
// worker pool, per-request deadlines, graceful degradation and the study
// cache, glued to the wire protocol.  The socket front-end (socket.hpp)
// and the replay tool are thin shells over this class; every behavior is
// testable in-process without a network.
//
// Robustness contract: submit() always yields exactly one response line —
// a request can fail (structured error with a taxonomy code), be shed
// (degraded response), or be refused at admission (overloaded error), but
// it can never crash the process, deadlock, or leak its queue slot.  The
// response content is a pure function of (request text, admission sequence
// number, service options): timing, thread interleaving and cache state
// never leak into the bytes, which is what makes request-log replay
// byte-identical across worker counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/function_bom.hpp"
#include "kits/registry.hpp"
#include "serve/cache.hpp"
#include "serve/fault.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/trace.hpp"

namespace ipass::serve {

struct ServiceOptions {
  unsigned workers = 1;          // request-level concurrency
  std::size_t queue_limit = 64;  // admitted-but-unfinished cap; above = overloaded
  // Backlog depth at admission from which optional stages (pareto,
  // sensitivity) are shed and the response flagged "degraded": true.
  // 0 disables shedding (the replay/CI configuration — shedding depends on
  // racing queue depth, so determinism requires it off).
  std::size_t degrade_depth = 0;
  std::size_t cache_capacity = 8;  // compiled studies kept (LRU)
  unsigned eval_threads = 1;       // engine threads per request
  FaultPlan faults;                // deterministic fault injection
  // Durable request journal (empty = journaling off).  Every admission
  // writes an Admit record before processing and a Commit record (the full
  // response) before the future resolves; on construction the service
  // recovers the file, truncates any torn tail, and re-executes the
  // admitted-but-uncommitted suffix so the journal's response stream is
  // byte-identical to an uninterrupted run (see serve/journal.hpp).
  std::string journal_path;
  bool journal_sync = false;  // fsync per append (power-loss durability)
  // Completed requests slower than this are logged to stderr as one-line
  // stage traces (trace_to_string); < 0 disables the log, 0 logs every
  // request.  Purely observational: the threshold can never change a
  // response byte.
  std::int64_t slow_request_ms = -1;
  // Completed traces retained for the traces() ring (oldest overwritten).
  std::size_t trace_capacity = 256;
};

struct ServiceStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;      // completed with a structured error
  std::uint64_t overloaded = 0;  // refused at admission
  std::uint64_t degraded = 0;    // completed with shed optional stages
  std::uint64_t recovered = 0;   // journal entries re-executed on startup
  std::uint64_t health = 0;      // health probes answered (never admitted)
  std::uint64_t stats_probes = 0;  // stats probes answered (never admitted)
  // Highest concurrent admitted-but-unfinished count ever observed (queue
  // plus running) — how close admission came to queue_limit.
  std::uint64_t queue_high_water = 0;
  // Per-outcome breakdown of `errors` by taxonomy code.
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t validation_errors = 0;
  std::uint64_t internal_errors = 0;
  CompiledStudyCache::Stats cache;
};

class AssessmentService {
 public:
  explicit AssessmentService(const ServiceOptions& options = {});
  // Drains the queue (every admitted request still gets its response),
  // then joins the workers.
  ~AssessmentService();

  AssessmentService(const AssessmentService&) = delete;
  AssessmentService& operator=(const AssessmentService&) = delete;

  // Admit one request (a single line/frame of JSON).  The future always
  // becomes a response line; it never throws.  Health and stats probes are
  // answered immediately without admission (no seq, no journal record).
  std::future<std::string> submit(std::string request_text);

  // submit() + wait.
  std::string handle(const std::string& request_text);

  // Graceful drain: stop admitting (new submissions get structured overload
  // refusals naming the drain) while already-admitted requests keep
  // running.  await_drained() blocks until queue and workers are idle or
  // the timeout passes (returns whether fully drained); flush_journal()
  // makes everything committed so far durable.
  void begin_drain();
  bool await_drained(std::chrono::milliseconds timeout);
  void flush_journal();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }
  const Journal* journal() const { return journal_.get(); }
  // Completed request traces (bounded ring, oldest overwritten).
  const TraceRing& traces() const { return traces_; }

 private:
  struct Task {
    std::uint64_t seq = 0;
    std::string text;
    std::promise<std::string> promise;
    bool shed = false;  // admission decided to shed optional stages
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Outcome {
    std::string body;
    bool ok = false;
    bool degraded = false;
    ErrorCode error = ErrorCode::Unspecified;  // set when !ok
  };

  void worker_loop();
  // Never throws: every failure becomes a structured error response.
  // `trace` (optional) receives the stage durations and the outcome
  // classification — observability only, never any response byte.
  Outcome process(const Task& task, RequestTrace* trace) const;
  Outcome run_assessment(const Task& task, const AssessmentRequest& request,
                         RequestTrace* trace) const;
  std::string health_response() const;
  std::string stats_response() const;
  // Ring-push, latency histograms and the slow-request stderr log for one
  // completed request.
  void finish_trace(RequestTrace& trace) const;
  void recover_journal();  // re-execute the uncommitted suffix (ctor only)

  const ServiceOptions options_;
  const kits::KitRegistry registry_;
  const core::FunctionalBom bom_;
  mutable CompiledStudyCache cache_;
  std::unique_ptr<Journal> journal_;  // null when journaling is off

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Task> queue_;
  std::size_t running_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  bool draining_ = false;
  ServiceStats stats_;
  mutable TraceRing traces_;  // completed-trace ring (internally locked)
  std::vector<std::thread> workers_;
};

}  // namespace ipass::serve
