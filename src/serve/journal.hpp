// Durable request journal for the assessment service: an append-only
// write-ahead log that makes process death survivable with byte-identical
// recovery.
//
// On-disk format (all integers big-endian):
//
//   +--------------------------------------------------------------+
//   | magic "IPASSJ01" (8 bytes)                                   |
//   +--------------------------------------------------------------+
//   | u32 len | u8 type | u64 seq | body (len - 9 bytes) | u32 crc |  x N
//   +--------------------------------------------------------------+
//
// `len` covers type + seq + body; `crc` is CRC-32C over that same region.
// Two record types: Admit (type 1, body = the request text, written at
// admission BEFORE the request is processed) and Commit (type 2, body = the
// response text, written once the response is handed to the transport).
//
// Recovery policy — every possible file state is either recovered or
// rejected, never silently misread:
//   * A torn tail (file ends mid-record, a zero/over-cap length field, or
//     a CRC mismatch) is the signature of a crash mid-append: the tail is
//     truncated and the valid prefix recovered.  Nothing after the first
//     corrupt byte is trusted — record boundaries downstream of corruption
//     cannot be re-synchronized reliably.
//   * A structurally valid record with impossible semantics (duplicate
//     admit/commit seq, commit without admission, unknown record type, bad
//     magic) is NOT a torn write — it means the file is foreign or the
//     writer is buggy, and recovery rejects it with a named-field error
//     rather than guessing.
//
// The admitted-but-uncommitted suffix returned by recovery is what the
// AssessmentService re-executes on startup: because a response is a pure
// function of (request text, admission seq, service options), the
// regenerated responses are byte-identical to what the crashed process
// would have produced — the property the journal test suite pins.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace ipass::serve {

inline constexpr char kJournalMagic[8] = {'I', 'P', 'A', 'S', 'S', 'J', '0', '1'};
// Generous over the 1 MiB frame cap: responses (sensitivity tables) can be
// larger than any request.  A length field above this is corruption.
inline constexpr std::size_t kMaxJournalRecordBytes = (8U << 20);

enum class JournalRecordType : unsigned char { Admit = 1, Commit = 2 };

struct JournalEntry {
  std::uint64_t seq = 0;
  std::string request;
  std::string response;    // empty unless committed
  bool committed = false;
};

// One valid on-disk record, in file order (introspection for tests and the
// corpus suite; entries_ is the semantic view).
struct JournalRecordInfo {
  std::uint64_t offset = 0;  // byte offset of the length prefix
  JournalRecordType type = JournalRecordType::Admit;
  std::uint64_t seq = 0;
};

struct JournalRecovery {
  std::vector<JournalEntry> entries;          // admit order == seq ascending append order
  std::vector<JournalRecordInfo> records;     // every valid record, file order
  std::uint64_t next_seq = 0;                 // max admitted seq + 1 (0 when empty)
  std::uint64_t valid_bytes = 0;              // trusted file prefix
  std::uint64_t truncated_bytes = 0;          // torn/corrupt tail dropped
  std::uint64_t committed_count = 0;
  std::uint64_t uncommitted_count = 0;
};

// Scan a journal file without modifying it.  Torn/corrupt tails come back
// as truncation in the result; structural violations throw a
// PreconditionError naming the record and field.  A missing file is an
// empty journal.
JournalRecovery scan_journal(const std::string& path);

// The canonical recovered response stream: every committed response in
// admission-sequence order, one line each.  This is what the CI kill-smoke
// compares byte-for-byte against an uninterrupted run.
std::string journal_response_stream(const std::string& path);

class Journal {
 public:
  struct Options {
    // fsync after every append (true durability against power loss).  Off,
    // records still reach the kernel page cache on every append — a
    // kill -9 loses nothing, only a machine crash can.
    bool sync = false;
  };

  // Opens (creating if absent) and recovers `path`: a torn tail is
  // physically truncated away, then the file is opened for appends.
  // Throws PreconditionError when recovery rejects the file.
  explicit Journal(const std::string& path);
  Journal(const std::string& path, const Options& options);
  ~Journal();  // flush + close

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const JournalRecovery& recovered() const { return recovered_; }
  const std::string& path() const { return path_; }

  // Append one record; each append is a single unbuffered write so a crash
  // can only tear the last record, never interleave two.  Thread-safe.
  void append_admit(std::uint64_t seq, const std::string& request);
  void append_commit(std::uint64_t seq, const std::string& response);

  // fsync the file (drain/shutdown path; every append already flushed to
  // the kernel).
  void flush();

  // Counters include the recovered prefix, so lag() is the number of
  // admitted requests whose response is not yet durable.
  std::uint64_t admit_count() const;
  std::uint64_t commit_count() const;
  std::uint64_t lag() const;

 private:
  void append_record(JournalRecordType type, std::uint64_t seq,
                     const std::string& body);

  const std::string path_;
  const Options options_;
  JournalRecovery recovered_;
  mutable std::mutex m_;
  std::FILE* file_ = nullptr;
  std::uint64_t admits_ = 0;   // recovered + appended
  std::uint64_t commits_ = 0;
};

}  // namespace ipass::serve
