#include "serve/client.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/metrics.hpp"
#include "common/strfmt.hpp"

namespace ipass::serve {

namespace {

// Process-wide mirrors of the per-client Stats (every ResilientClient feeds
// the same counters; per-instance numbers stay exact through stats()).
struct ClientMetrics {
  metrics::Counter& calls;
  metrics::Counter& attempts;
  metrics::Counter& successes;
  metrics::Counter& failures;
  metrics::Counter& backoffs;
  metrics::Counter& breaker_trips;
  metrics::Counter& breaker_fast_fails;

  static ClientMetrics& instance() {
    auto& r = metrics::global_metrics();
    static ClientMetrics m{
        r.counter("client_calls_total"),
        r.counter("client_attempts_total"),
        r.counter("client_successes_total"),
        r.counter("client_attempt_failures_total"),
        r.counter("client_backoffs_total"),
        r.counter("client_breaker_trips_total"),
        r.counter("client_breaker_fast_fails_total"),
    };
    return m;
  }
};

}  // namespace

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 RetryPolicy policy, Sleep sleep, Clock clock)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      sleep_(sleep ? std::move(sleep)
                   : [](std::chrono::milliseconds d) { std::this_thread::sleep_for(d); }),
      clock_(clock ? std::move(clock)
                   : [] { return std::chrono::steady_clock::now(); }),
      backoff_rng_(policy.backoff_seed, 0x5e77e5ULL) {
  require(policy_.max_attempts >= 1, "ResilientClient: max_attempts must be >= 1");
  require(policy_.jitter >= 0.0 && policy_.jitter <= 1.0,
          "ResilientClient: jitter must be in [0, 1]");
  require(policy_.base_backoff_ms >= 1, "ResilientClient: base_backoff_ms must be >= 1");
}

bool ResilientClient::attempt_once(const std::string& request,
                                   std::string& response) {
  ++stats_.attempts;
  ClientMetrics::instance().attempts.add();
  if (conn_ == nullptr) {
    try {
      conn_ = std::make_unique<SocketClient>(host_, port_);
    } catch (const std::exception& e) {
      ++stats_.connect_failures;
      ClientMetrics::instance().failures.add();
      last_failure_ = e.what();
      return false;
    }
  }
  const TransportStatus status = conn_->try_roundtrip(request, response);
  if (status == TransportStatus::Ok) return true;
  ClientMetrics::instance().failures.add();
  // Connections are single-use after any failure: the stream position is
  // unknown (a torn response may sit half-read), so reconnect from scratch.
  conn_.reset();
  switch (status) {
    case TransportStatus::SendError: ++stats_.send_failures; break;
    case TransportStatus::NoResponse: ++stats_.no_response_failures; break;
    case TransportStatus::TruncatedResponse: ++stats_.truncated_responses; break;
    case TransportStatus::OversizedResponse: ++stats_.oversized_responses; break;
    case TransportStatus::Ok: break;
  }
  last_failure_ = transport_status_name(status);
  return false;
}

std::uint32_t ResilientClient::next_backoff_ms(unsigned attempt) {
  // Exponential: base * 2^(attempt-1), saturating at max.  attempt is the
  // number of attempts already failed (>= 1).
  const unsigned shift = std::min(attempt - 1U, 31U);
  const std::uint64_t raw = static_cast<std::uint64_t>(policy_.base_backoff_ms) << shift;
  const std::uint64_t capped =
      std::min<std::uint64_t>(raw, policy_.max_backoff_ms);
  // Jittered into ((1 - jitter) * b, b]: subtract a uniform fraction of the
  // jitter window so the full value stays reachable and the floor is open.
  const double u = backoff_rng_.uniform();
  const double value = static_cast<double>(capped) * (1.0 - policy_.jitter * u);
  return static_cast<std::uint32_t>(std::max(1.0, value));
}

std::string ResilientClient::call(const std::string& request,
                                  std::int64_t deadline_ms) {
  ++stats_.calls;
  ClientMetrics::instance().calls.add();
  const auto start = clock_();
  const auto remaining = [&]() -> std::int64_t {
    if (deadline_ms <= 0) return -1;  // no deadline
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             clock_() - start)
                             .count();
    return deadline_ms - elapsed;
  };

  if (breaker_open_) {
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                           clock_() - breaker_opened_at_)
                           .count();
    if (since < static_cast<std::int64_t>(policy_.breaker_cooldown_ms)) {
      ++stats_.breaker_fast_fails;
      ClientMetrics::instance().breaker_fast_fails.add();
      throw PreconditionError(
          strf("ResilientClient: circuit breaker open (%u consecutive failures; "
               "%u ms cooldown)",
               consecutive_failures_, policy_.breaker_cooldown_ms),
          ErrorCode::Overload);
    }
    // Half-open: exactly one probe attempt decides.
    std::string response;
    if (attempt_once(request, response)) {
      breaker_open_ = false;
      consecutive_failures_ = 0;
      ++stats_.successes;
      ClientMetrics::instance().successes.add();
      return response;
    }
    breaker_opened_at_ = clock_();
    throw PreconditionError(
        strf("ResilientClient: half-open probe failed (%s); breaker re-opened",
             last_failure_.c_str()),
        ErrorCode::Overload);
  }

  for (unsigned attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (deadline_ms > 0 && remaining() <= 0) {
      throw PreconditionError(
          strf("ResilientClient: deadline of %lld ms exhausted after %u attempts "
               "(last failure: %s)",
               static_cast<long long>(deadline_ms), attempt - 1,
               attempt > 1 ? last_failure_.c_str() : "none"),
          ErrorCode::Deadline);
    }
    std::string response;
    if (attempt_once(request, response)) {
      consecutive_failures_ = 0;
      ++stats_.successes;
      ClientMetrics::instance().successes.add();
      return response;
    }
    if (policy_.breaker_threshold > 0 &&
        ++consecutive_failures_ >= policy_.breaker_threshold) {
      breaker_open_ = true;
      breaker_opened_at_ = clock_();
      ++stats_.breaker_trips;
      ClientMetrics::instance().breaker_trips.add();
      throw PreconditionError(
          strf("ResilientClient: circuit breaker tripped after %u consecutive "
               "failures (last: %s)",
               consecutive_failures_, last_failure_.c_str()),
          ErrorCode::Overload);
    }
    if (attempt == policy_.max_attempts) break;
    std::uint32_t backoff = next_backoff_ms(attempt);
    if (deadline_ms > 0) {
      const std::int64_t left = remaining();
      if (left <= 0) continue;  // next loop iteration throws Deadline
      backoff = static_cast<std::uint32_t>(
          std::min<std::int64_t>(backoff, left));
    }
    backoff_log_.push_back(backoff);
    ClientMetrics::instance().backoffs.add();
    sleep_(std::chrono::milliseconds(backoff));
  }
  throw PreconditionError(
      strf("ResilientClient: retry budget of %u attempts exhausted (last "
           "failure: %s)",
           policy_.max_attempts, last_failure_.c_str()),
      ErrorCode::Overload);
}

}  // namespace ipass::serve
