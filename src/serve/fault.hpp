// Deterministic seeded fault injection for the assessment service and its
// transport.
//
// Every fault decision is a pure function of (plan seed, injection key,
// fault kind): the service asks `fires(seq, kind)` at fixed points of a
// request's life — and the chaos transport asks with a key derived from
// (connection, frame, direction) — and the answer never depends on timing,
// thread interleaving or which worker picked the request up.  Replaying the
// same request log against the same plan therefore injects the same faults
// into the same requests, and the same chaos seed tears the same frames —
// the property the replay-determinism and chaos-soak suites pin.
#pragma once

#include <cstdint>
#include <string>

namespace ipass::serve {

enum class FaultKind {
  // Service-level faults (keyed by admission sequence number).
  Parse,        // request text treated as unparseable
  WorkerThrow,  // worker throws std::runtime_error mid-request
  Stall,        // worker sleeps stall_ms before evaluating
  Deadline,     // request's deadline treated as already expired
  Evict,        // the request's study is evicted from the cache mid-flight
  // Transport-level faults (keyed by (connection, frame, direction);
  // injected by ChaosTransport, see serve/chaos.hpp).
  TearFrame,    // forward only a prefix of the frame, then kill the link
  SplitWrite,   // deliver the frame in many tiny writes (reassembly test)
  Delay,        // stall delay_ms before forwarding
  Reset,        // kill the connection instead of forwarding
  Garbage,      // inject garbage bytes where a frame belongs, then kill
};

const char* fault_kind_name(FaultKind kind);

struct FaultPlan {
  std::uint64_t seed = 0;
  double parse_rate = 0.0;
  double worker_throw_rate = 0.0;
  double stall_rate = 0.0;
  double deadline_rate = 0.0;
  double evict_rate = 0.0;
  std::uint32_t stall_ms = 5;
  // Transport kinds (only ChaosTransport consults these).
  double tear_rate = 0.0;
  double split_rate = 0.0;
  double delay_rate = 0.0;
  double reset_rate = 0.0;
  double garbage_rate = 0.0;
  std::uint32_t delay_ms = 1;

  bool any() const {
    return parse_rate > 0.0 || worker_throw_rate > 0.0 || stall_rate > 0.0 ||
           deadline_rate > 0.0 || evict_rate > 0.0 || any_transport();
  }
  bool any_transport() const {
    return tear_rate > 0.0 || split_rate > 0.0 || delay_rate > 0.0 ||
           reset_rate > 0.0 || garbage_rate > 0.0;
  }

  // Whether fault `kind` fires for injection key `seq` (the admission
  // sequence number for service kinds, a (connection, frame, direction)
  // key for transport kinds).  Deterministic; each (seq, kind) pair draws
  // from its own PCG32 stream so the kinds fire independently.
  bool fires(std::uint64_t seq, FaultKind kind) const;
};

// Parse a command-line fault spec like
//   "seed=42,parse=0.1,throw=0.05,stall=0.1,stall_ms=3,deadline=0.1,
//    evict=0.25,tear=0.1,split=0.2,delay=0.1,delay_ms=2,reset=0.1,garbage=0.05"
// (keys optional, any order).  Throws PreconditionError on unknown keys or
// rates outside [0, 1].
FaultPlan parse_fault_spec(const std::string& spec);

}  // namespace ipass::serve
