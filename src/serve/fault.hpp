// Deterministic seeded fault injection for the assessment service.
//
// Every fault decision is a pure function of (plan seed, request sequence
// number, fault kind): the service asks `fires(seq, kind)` at fixed points
// of a request's life and the answer never depends on timing, thread
// interleaving or which worker picked the request up.  Replaying the same
// request log against the same plan therefore injects the same faults into
// the same requests — the property the replay-determinism suite pins.
#pragma once

#include <cstdint>
#include <string>

namespace ipass::serve {

enum class FaultKind {
  Parse,        // request text treated as unparseable
  WorkerThrow,  // worker throws std::runtime_error mid-request
  Stall,        // worker sleeps stall_ms before evaluating
  Deadline,     // request's deadline treated as already expired
  Evict,        // the request's study is evicted from the cache mid-flight
};

const char* fault_kind_name(FaultKind kind);

struct FaultPlan {
  std::uint64_t seed = 0;
  double parse_rate = 0.0;
  double worker_throw_rate = 0.0;
  double stall_rate = 0.0;
  double deadline_rate = 0.0;
  double evict_rate = 0.0;
  std::uint32_t stall_ms = 5;

  bool any() const {
    return parse_rate > 0.0 || worker_throw_rate > 0.0 || stall_rate > 0.0 ||
           deadline_rate > 0.0 || evict_rate > 0.0;
  }

  // Whether fault `kind` fires for the request admitted as sequence number
  // `seq`.  Deterministic; each (seq, kind) pair draws from its own PCG32
  // stream so the kinds fire independently.
  bool fires(std::uint64_t seq, FaultKind kind) const;
};

// Parse a command-line fault spec like
//   "seed=42,parse=0.1,throw=0.05,stall=0.1,stall_ms=3,deadline=0.1,evict=0.25"
// (keys optional, any order).  Throws PreconditionError on unknown keys or
// rates outside [0, 1].
FaultPlan parse_fault_spec(const std::string& spec);

}  // namespace ipass::serve
