// Dependency-free POSIX socket front-end for the assessment service.
//
// Framing: every message (request or response) is a 4-byte big-endian
// length followed by that many bytes of JSON — the same documents the
// in-process service consumes and produces, so a socket client and an
// in-process replay see identical bytes.  Frames above kMaxFrameBytes are
// answered with a structured parse error and the connection is closed
// (a hostile length header must not make the server allocate gigabytes).
//
// The server is deliberately simple: one thread per connection, requests
// within a connection processed in order (responses come back in request
// order), concurrency across connections bounded by max_connections —
// admission control proper lives in the AssessmentService behind it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace ipass::serve {

inline constexpr std::size_t kMaxFrameBytes = 1U << 20;  // 1 MiB

struct ServerOptions {
  ServiceOptions service;
  std::uint16_t port = 0;  // 0 = ephemeral (read back via port())
  int backlog = 16;
  unsigned max_connections = 32;
};

class SocketServer {
 public:
  // Binds and listens on 127.0.0.1 immediately; throws PreconditionError
  // when the port is unavailable (or on platforms without POSIX sockets).
  explicit SocketServer(const ServerOptions& options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  std::uint16_t port() const { return port_; }
  AssessmentService& service() { return *service_; }

  // Accept loop; returns after stop().  Call from a dedicated thread (or
  // let it be the main thread of a daemon).
  void run();

  // Unblock run() and stop accepting.  Async-signal-safe enough for a
  // SIGTERM handler: it only shuts down the listening socket and sets a
  // flag.  Connection threads are joined by run() on the way out.
  void stop();

 private:
  void serve_connection(int fd);

  const ServerOptions options_;
  std::unique_ptr<AssessmentService> service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> active_connections_{0};
  std::mutex conn_m_;
  std::vector<int> conn_fds_;  // open connections, for shutdown on stop
  std::vector<std::thread> threads_;
};

// Client helpers (used by the replay tool's --connect mode and the tests).
// Throws PreconditionError on connection or framing failures.
class SocketClient {
 public:
  SocketClient(const std::string& host, std::uint16_t port);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  // One request frame out, one response frame back.
  std::string roundtrip(const std::string& request);

 private:
  int fd_ = -1;
};

}  // namespace ipass::serve
