// Dependency-free POSIX socket front-end for the assessment service.
//
// Framing: every message (request or response) is a 4-byte big-endian
// length followed by that many bytes of JSON — the same documents the
// in-process service consumes and produces, so a socket client and an
// in-process replay see identical bytes.  Frames above kMaxFrameBytes are
// answered with a structured parse error and the connection is closed
// (a hostile length header must not make the server allocate gigabytes).
//
// The server is deliberately simple: one thread per connection, requests
// within a connection processed in order (responses come back in request
// order), concurrency across connections bounded by max_connections —
// admission control proper lives in the AssessmentService behind it.
//
// Shutdown is a graceful drain: stop() unblocks the accept loop, after
// which run() stops admitting (new frames get structured overload
// refusals), lets every admitted request finish (bounded by
// drain_timeout_ms), flushes the journal, and only then releases the
// connections — a SIGTERM never loses an in-flight response.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace ipass::serve {

inline constexpr std::size_t kMaxFrameBytes = 1U << 20;  // 1 MiB

// Outcome of reading one frame.  Eof is a CLEAN end of stream — zero bytes
// after the previous frame; Truncated means the connection died mid-frame.
// The distinction matters on both sides: the server answers a truncated
// request with a structured parse error instead of silently hanging up,
// and a client that saw Eof knows no response byte was produced (a retry
// cannot double-consume anything) while Truncated means a response was
// partially consumed (still safe to retry here — responses are
// deterministic — but accounted separately).
enum class FrameStatus { Ok, Eof, Truncated, TooLarge };

// Low-level framing, shared by the server, the clients and the chaos
// transport (POSIX only; on _WIN32 these fail like the classes below).
FrameStatus read_frame(int fd, std::string& payload);
bool write_frame(int fd, const std::string& payload);
bool write_bytes(int fd, const char* data, std::size_t size);
// The exact wire form of a frame (header + payload) — what a fault
// injector tears or splits.
std::string frame_bytes(const std::string& payload);

struct ServerOptions {
  ServiceOptions service;
  std::uint16_t port = 0;  // 0 = ephemeral (read back via port())
  int backlog = 16;
  unsigned max_connections = 32;
  // How long a drain may wait for admitted requests before connections are
  // hard-closed anyway.
  std::uint32_t drain_timeout_ms = 5000;
};

class SocketServer {
 public:
  // Binds and listens on 127.0.0.1 immediately; throws PreconditionError
  // when the port is unavailable (or on platforms without POSIX sockets).
  explicit SocketServer(const ServerOptions& options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  std::uint16_t port() const { return port_; }
  AssessmentService& service() { return *service_; }

  // Accept loop; returns after stop() and a graceful drain.  Call from a
  // dedicated thread (or let it be the main thread of a daemon).
  void run();

  // Unblock run() and stop accepting.  Async-signal-safe enough for a
  // SIGINT/SIGTERM handler: it only shuts down the listening socket and
  // sets a flag.  The drain itself happens on run()'s thread.
  void stop();

 private:
  void serve_connection(int fd);

  const ServerOptions options_;
  std::unique_ptr<AssessmentService> service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> active_connections_{0};
  std::mutex conn_m_;
  std::vector<int> conn_fds_;  // open connections, for shutdown on stop
  std::vector<std::thread> threads_;
};

// How a client-side roundtrip failed (Ok = it did not).  NoResponse is a
// clean EOF before the first response byte; TruncatedResponse means the
// stream died mid-response — the caller may have to assume the response
// was (partially) consumed.
enum class TransportStatus {
  Ok,
  SendError,
  NoResponse,
  TruncatedResponse,
  OversizedResponse,
};

const char* transport_status_name(TransportStatus status);

// Client helpers (used by the replay tool's --connect mode, ResilientClient
// and the tests).  The constructor throws PreconditionError on connection
// failure.
class SocketClient {
 public:
  SocketClient(const std::string& host, std::uint16_t port);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  // One request frame out, one response frame back.  Throws
  // PreconditionError naming the failure mode.
  std::string roundtrip(const std::string& request);

  // Non-throwing variant for retry loops: returns the failure
  // classification instead (response is valid only for Ok).
  TransportStatus try_roundtrip(const std::string& request, std::string& response);

 private:
  int fd_ = -1;
};

}  // namespace ipass::serve
