// Wire protocol of ipass-serve: JSON requests and responses, one object per
// line/frame, reusing the hardened common/json parser and the kits JSON
// loader (depth caps, overflow rejection, duplicate-key rejection, unknown
// fields as errors) so a malformed request can never reach an engine.
//
// Request envelope (optional fields in brackets):
//   {"id": "r1", "kit_name": "ltcc-ceramic" | "kit": {<kit JSON>},
//    ["reference": "pcb-fr4"], ["bom": "gps-front-end"],
//    ["scope": "full" | "cost-only"], ["pareto": true],
//    ["sensitivity": true], ["weights": {"performance": 1, "size": 1,
//    "cost": 1}], ["volume": 250000], ["deadline_ms": 100]}
//
// The assessment anchors the reference kit's build-ups as the 100% rows
// (exactly like kits::sweep_kits) and appends the requested kit's variants.
// Responses are a single line of JSON with every double printed %.17g, so
// a response stream is bit-reproducible across thread counts and replays:
//   {"id": "r1", "status": "ok", "degraded": false, ...}
//   {"id": "r1", "status": "error", "code": "deadline", "message": "..."}
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "core/methodology.hpp"
#include "kits/process_kit.hpp"

namespace ipass::serve {

// Wire version token, reported by the health and stats responses (bumped
// when the protocol or response format changes).
inline constexpr const char* kWireVersion = "ipass-serve/9";
// Historic name, kept for existing call sites.
inline constexpr const char* kServeVersion = kWireVersion;

// The probe kinds the service answers at admission — no sequence number,
// no journal record, no queue slot — so a readiness check or a metrics
// scrape never perturbs the deterministic request stream.
enum class ProbeKind { None, Health, Stats };

// Classify `text` as a probe: {"kind": "health"} or {"kind": "stats"} (and
// nothing else of consequence).  Cheap on the hot path: the full parse only
// runs when the text contains a "kind" key at all.
ProbeKind probe_kind(const std::string& text);

// Whether `text` is a health probe (probe_kind == Health).
bool is_health_request(const std::string& text);
// Whether `text` is a stats probe (probe_kind == Stats).
bool is_stats_request(const std::string& text);

// A parsed, field-validated request.  Kit identity is either a registry
// name or an inline kit document (exactly one of the two).
struct AssessmentRequest {
  std::string id;
  std::string bom = "gps-front-end";
  std::string reference = "pcb-fr4";
  std::string kit_name;            // registry kit, XOR inline kit
  bool has_inline_kit = false;
  kits::ProcessKit inline_kit;
  core::PipelineScope scope = core::PipelineScope::Full;
  bool want_pareto = false;        // optional stage, shed under load
  bool want_sensitivity = false;   // optional stage, shed under load
  core::FomWeights weights;
  double volume = 0.0;             // > 0 overrides every build-up's volume
  std::int64_t deadline_ms = 0;    // 0 = no deadline
};

// Parse and validate one request.  Throws PreconditionError carrying
// ErrorCode::Parse for malformed JSON and ErrorCode::Validation for a
// well-formed document that violates the envelope contract.
AssessmentRequest parse_request(const std::string& text);

// Identity of the compile artifact a request needs: the canonical %.17g
// kit document plus reference/bom/scope.  Everything else in the request
// (weights, volume, deadline, stages) is per-request evaluation state and
// deliberately NOT part of the key — repeat traffic over the same study
// skips MNA/area compilation entirely.  The key is the exact canonical
// string (no lossy hashing): a collision could silently serve the wrong
// study, and the cache is size-bounded anyway.
std::string study_cache_key(const AssessmentRequest& request);

// One response line for a failed request.  `message` is escaped; `code`
// becomes the stable wire token of error_code_name (Unspecified is mapped
// to "validation" by the service before it gets here).
std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message);

}  // namespace ipass::serve
