#include "serve/fault.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"

namespace ipass::serve {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Parse: return "parse";
    case FaultKind::WorkerThrow: return "throw";
    case FaultKind::Stall: return "stall";
    case FaultKind::Deadline: return "deadline";
    case FaultKind::Evict: return "evict";
    case FaultKind::TearFrame: return "tear";
    case FaultKind::SplitWrite: return "split";
    case FaultKind::Delay: return "delay";
    case FaultKind::Reset: return "reset";
    case FaultKind::Garbage: return "garbage";
  }
  return "?";
}

bool FaultPlan::fires(std::uint64_t seq, FaultKind kind) const {
  double rate = 0.0;
  switch (kind) {
    case FaultKind::Parse: rate = parse_rate; break;
    case FaultKind::WorkerThrow: rate = worker_throw_rate; break;
    case FaultKind::Stall: rate = stall_rate; break;
    case FaultKind::Deadline: rate = deadline_rate; break;
    case FaultKind::Evict: rate = evict_rate; break;
    case FaultKind::TearFrame: rate = tear_rate; break;
    case FaultKind::SplitWrite: rate = split_rate; break;
    case FaultKind::Delay: rate = delay_rate; break;
    case FaultKind::Reset: rate = reset_rate; break;
    case FaultKind::Garbage: rate = garbage_rate; break;
  }
  if (rate <= 0.0) return false;
  // One PCG32 stream per (seq, kind): the decision depends on nothing but
  // the plan and the request's admission sequence number.
  Pcg32 rng(seed ^ (seq * 0x9e3779b97f4a7c15ULL),
            static_cast<std::uint64_t>(kind) + 1U);
  return rng.bernoulli(rate);
}

FaultPlan parse_fault_spec(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos,
            strf("fault spec: item '%s' is not key=value", item.c_str()));
    const std::string key = item.substr(0, eq);
    const std::string text = item.substr(eq + 1);
    char* parse_end = nullptr;
    const double value = std::strtod(text.c_str(), &parse_end);
    require(parse_end != text.c_str() && *parse_end == '\0',
            strf("fault spec: '%s' has a malformed value '%s'", key.c_str(),
                 text.c_str()));
    const auto rate = [&]() {
      require(value >= 0.0 && value <= 1.0,
              strf("fault spec: rate '%s' must be in [0, 1]", key.c_str()));
      return value;
    };
    if (key == "seed") {
      require(value >= 0.0, "fault spec: seed must be non-negative");
      plan.seed = static_cast<std::uint64_t>(value);
    } else if (key == "parse") {
      plan.parse_rate = rate();
    } else if (key == "throw") {
      plan.worker_throw_rate = rate();
    } else if (key == "stall") {
      plan.stall_rate = rate();
    } else if (key == "deadline") {
      plan.deadline_rate = rate();
    } else if (key == "evict") {
      plan.evict_rate = rate();
    } else if (key == "stall_ms") {
      require(value >= 0.0 && value <= 60000.0,
              "fault spec: stall_ms must be in [0, 60000]");
      plan.stall_ms = static_cast<std::uint32_t>(value);
    } else if (key == "tear") {
      plan.tear_rate = rate();
    } else if (key == "split") {
      plan.split_rate = rate();
    } else if (key == "delay") {
      plan.delay_rate = rate();
    } else if (key == "reset") {
      plan.reset_rate = rate();
    } else if (key == "garbage") {
      plan.garbage_rate = rate();
    } else if (key == "delay_ms") {
      require(value >= 0.0 && value <= 60000.0,
              "fault spec: delay_ms must be in [0, 60000]");
      plan.delay_ms = static_cast<std::uint32_t>(value);
    } else {
      throw PreconditionError(strf("fault spec: unknown key '%s'", key.c_str()));
    }
  }
  return plan;
}

}  // namespace ipass::serve
