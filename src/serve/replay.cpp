#include "serve/replay.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace ipass::serve {

std::vector<std::string> replay(AssessmentService& service,
                                const std::vector<std::string>& requests,
                                std::size_t window) {
  if (window == 0) window = service.options().queue_limit;
  require(window >= 1, "replay: window must be at least 1");

  std::vector<std::future<std::string>> futures;
  futures.reserve(requests.size());
  std::vector<std::string> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i >= window) {
      // Resolve the oldest outstanding request first: at most window - 1
      // submissions can still be in flight, so admission never refuses.
      responses[i - window] = futures[i - window].get();
    }
    futures.push_back(service.submit(requests[i]));
  }
  for (std::size_t i = requests.size() >= window ? requests.size() - window : 0;
       i < requests.size(); ++i) {
    responses[i] = futures[i].get();
  }
  return responses;
}

std::vector<std::string> read_request_log(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), strf("replay: cannot open request log '%s'", path.c_str()));
  std::vector<std::string> requests;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) requests.push_back(line);
  }
  return requests;
}

std::string response_stream(const std::vector<std::string>& responses) {
  std::string out;
  for (const std::string& r : responses) {
    out += r;
    out += '\n';
  }
  return out;
}

}  // namespace ipass::serve
