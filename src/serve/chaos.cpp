#include "serve/chaos.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "serve/socket.hpp"

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace ipass::serve {

namespace {

// Injection keys must be unique per (connection, frame, direction) and fit
// the u64 FaultPlan::fires key.  2^20 frames per connection is far beyond
// any soak.
constexpr std::uint64_t kFramesPerConnection = 1ULL << 20;

std::uint64_t fault_key(std::uint64_t conn, std::uint64_t frame, unsigned dir) {
  return conn * kFramesPerConnection + frame * 2 + dir;
}

// Kill a connection the rude way: SO_LINGER(0) turns close() into an RST,
// so the peer sees a reset instead of an orderly EOF — the harshest thing a
// real network does.
void hard_close(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

}  // namespace

ChaosTransport::ChaosTransport(const ChaosOptions& options) : options_(options) {
  require(options_.upstream_port != 0, "ChaosTransport: upstream_port required");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "ChaosTransport: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw PreconditionError(strf("ChaosTransport: cannot listen on port %u: %s",
                                 static_cast<unsigned>(options_.port),
                                 std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "ChaosTransport: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

ChaosTransport::~ChaosTransport() {
  stop();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ChaosTransport::run() {
  std::uint64_t conn_index = 0;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stop_.load() && errno == EINTR) continue;
      break;
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    const std::uint64_t index = conn_index++;
    {
      std::lock_guard<std::mutex> lk(conn_m_);
      conn_fds_.push_back(fd);
    }
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.connections;
    }
    threads_.emplace_back([this, fd, index] { pump_connection(fd, index); });
  }
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ChaosTransport::stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

ChaosStats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_m_);
  return stats_;
}

bool ChaosTransport::forward(int fd, const std::string& payload,
                             std::uint64_t key) {
  const FaultPlan& plan = options_.faults;
  if (plan.fires(key, FaultKind::Reset)) {
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.resets;
    }
    return false;
  }
  if (plan.fires(key, FaultKind::Delay)) {
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.delayed;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
  }
  if (plan.fires(key, FaultKind::Garbage)) {
    // Deterministic garbage where a frame belongs: a plausible-looking but
    // bogus length header followed by noise, then kill the link.  The
    // reader must fail with Truncated/TooLarge, never misparse.
    Pcg32 rng(plan.seed ^ (key * 0x9e3779b97f4a7c15ULL), 0xbadULL);
    std::string junk(16, '\0');
    for (char& c : junk) c = static_cast<char>(rng.next_u32() & 0xFF);
    write_bytes(fd, junk.data(), junk.size());
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.garbage;
    }
    return false;
  }
  const std::string wire = frame_bytes(payload);
  if (plan.fires(key, FaultKind::TearFrame)) {
    // A strict prefix: at least 1 byte (the peer sees data arrive) and at
    // most all-but-one (the frame can never complete).
    const std::size_t cut = std::max<std::size_t>(1, wire.size() / 2);
    write_bytes(fd, wire.data(), cut);
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.torn;
    }
    return false;
  }
  if (plan.fires(key, FaultKind::SplitWrite)) {
    // Many tiny writes exercise the peer's short-read reassembly.
    constexpr std::size_t kChunk = 7;
    for (std::size_t at = 0; at < wire.size(); at += kChunk) {
      if (!write_bytes(fd, wire.data() + at, std::min(kChunk, wire.size() - at))) {
        return false;
      }
    }
    std::lock_guard<std::mutex> lk(stats_m_);
    ++stats_.split;
    ++stats_.frames;
    return true;
  }
  if (!write_bytes(fd, wire.data(), wire.size())) return false;
  std::lock_guard<std::mutex> lk(stats_m_);
  ++stats_.frames;
  return true;
}

void ChaosTransport::pump_connection(int client_fd, std::uint64_t conn_index) {
  int up_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  bool killed = false;
  if (up_fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.upstream_port);
    if (::inet_pton(AF_INET, options_.upstream_host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(up_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(up_fd);
      up_fd = -1;
    } else {
      const int one = 1;
      ::setsockopt(up_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (up_fd >= 0) {
    std::string frame;
    for (std::uint64_t frame_index = 0;; ++frame_index) {
      if (read_frame(client_fd, frame) != FrameStatus::Ok) break;
      if (!forward(up_fd, frame, fault_key(conn_index, frame_index, 0))) {
        killed = true;
        break;
      }
      if (read_frame(up_fd, frame) != FrameStatus::Ok) break;
      if (!forward(client_fd, frame, fault_key(conn_index, frame_index, 1))) {
        killed = true;
        break;
      }
    }
    if (killed) {
      hard_close(up_fd);
    } else {
      ::close(up_fd);
    }
  }
  if (killed) {
    hard_close(client_fd);
  } else {
    ::close(client_fd);
  }
  std::lock_guard<std::mutex> lk(conn_m_);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), client_fd));
}

}  // namespace ipass::serve

#else  // _WIN32

namespace ipass::serve {

ChaosTransport::ChaosTransport(const ChaosOptions& options) : options_(options) {
  throw PreconditionError("ChaosTransport: POSIX sockets unavailable on this platform");
}
ChaosTransport::~ChaosTransport() = default;
void ChaosTransport::run() {}
void ChaosTransport::stop() {}
ChaosStats ChaosTransport::stats() const { return {}; }
bool ChaosTransport::forward(int, const std::string&, std::uint64_t) { return false; }
void ChaosTransport::pump_connection(int, std::uint64_t) {}

}  // namespace ipass::serve

#endif
