#include "serve/trace.hpp"

#include "common/strfmt.hpp"

namespace ipass::serve {

const char* cache_outcome_name(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::None: return "none";
    case CacheOutcome::Hit: return "hit";
    case CacheOutcome::Miss: return "miss";
    case CacheOutcome::Wait: return "wait";
  }
  return "?";
}

std::string trace_to_string(const RequestTrace& trace) {
  const auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; };
  std::string out = strf(
      "slow request seq=%llu total=%.1fms parse=%.1fms queue=%.1fms "
      "cache=%.1fms (%s) evaluate=%.1fms serialize=%.1fms journal=%.1fms",
      static_cast<unsigned long long>(trace.seq), ms(trace.total_ns),
      ms(trace.parse_ns), ms(trace.queue_wait_ns), ms(trace.cache_ns),
      cache_outcome_name(trace.cache), ms(trace.evaluate_ns),
      ms(trace.serialize_ns), ms(trace.journal_append_ns));
  if (trace.ok) {
    out += trace.degraded ? " outcome=ok(degraded)" : " outcome=ok";
  } else {
    out += strf(" outcome=error(%s)", error_code_name(trace.error));
  }
  return out;
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "TraceRing: capacity must be at least 1");
  ring_.reserve(capacity);
}

void TraceRing::push(const RequestTrace& trace) {
  std::lock_guard<std::mutex> lk(m_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++pushed_;
}

std::vector<RequestTrace> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest retained slot once the ring has wrapped.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRing::pushed() const {
  std::lock_guard<std::mutex> lk(m_);
  return pushed_;
}

}  // namespace ipass::serve
