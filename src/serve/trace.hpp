// Per-request stage tracing for the assessment service.
//
// Every admitted request gets one RequestTrace keyed by its admission
// sequence number — the same seq that keys the journal and the fault plan,
// so trace identity is deterministic even though the durations in it are
// wall-clock.  The trace records where the request spent its life (parse,
// queue wait, cache lookup/compile, evaluate, serialize, journal append)
// plus how the cache classified it (hit / miss / single-flight wait) and
// how it ended (ok / error code / degraded).
//
// Completed traces land in a bounded ring buffer (fixed capacity, oldest
// overwritten) and, when the total beats the service's slow-request
// threshold, are logged to stderr — never, under any configuration, into a
// response: timing flows into observability only, which is what keeps
// replay byte-identical with tracing enabled.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ipass::serve {

// How the study cache classified the request's lookup.
enum class CacheOutcome : unsigned char {
  None,  // the request failed before (or without) a cache lookup
  Hit,   // served from a ready entry
  Miss,  // this request ran the compile
  Wait,  // joined another request's in-flight compile
};

const char* cache_outcome_name(CacheOutcome outcome);

struct RequestTrace {
  std::uint64_t seq = 0;
  // Stage durations, wall-clock nanoseconds.  A stage the request never
  // reached stays 0.
  std::uint64_t parse_ns = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t cache_ns = 0;       // lookup + compile or single-flight wait
  std::uint64_t evaluate_ns = 0;    // pipeline evaluate + optional stages
  std::uint64_t serialize_ns = 0;
  std::uint64_t journal_append_ns = 0;  // commit record append
  std::uint64_t total_ns = 0;           // admission to response settled
  CacheOutcome cache = CacheOutcome::None;
  bool ok = false;
  bool degraded = false;
  ErrorCode error = ErrorCode::Unspecified;  // meaningful when !ok
};

// One line for the slow-request log (stderr), naming every stage:
//   slow request seq=12 total=153.2ms parse=0.1ms queue=2.0ms cache=148.7ms
//   (miss) evaluate=2.1ms serialize=0.2ms journal=0.1ms outcome=ok
std::string trace_to_string(const RequestTrace& trace);

// Bounded ring of completed traces.  push() overwrites the oldest once the
// ring is full; snapshot() returns the retained traces oldest-first.
// Thread-safe; the lock is held only for a fixed-size copy, never across
// any request work.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void push(const RequestTrace& trace);
  std::vector<RequestTrace> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  // Total traces ever pushed (monotone; snapshot().size() saturates at
  // capacity while this keeps counting — the wraparound test's handle).
  std::uint64_t pushed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex m_;
  std::vector<RequestTrace> ring_;
  std::size_t next_ = 0;      // slot the next push overwrites
  std::uint64_t pushed_ = 0;
};

}  // namespace ipass::serve
