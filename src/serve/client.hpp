// Resilient serve client: reconnect, deterministic exponential backoff with
// jitter, a retry budget, deadline propagation and a circuit breaker.
//
// Retry safety rests on the service determinism contract (service.hpp): a
// response is a pure function of the request text and the service options,
// so re-sending a request whose response may or may not have been produced
// yields the same bytes either way — a retry can never observe a different
// answer, and (with journaling) the server never double-executes anything
// observable: a retried request is simply a new admission whose response is
// identical.  That is why every transport failure mode (send error, clean
// EOF before a response, truncated response) is safe to retry here.
//
// Determinism for tests: backoff jitter comes from a seeded PCG32 stream,
// and both the sleeper and the clock are injectable, so a test pins the
// exact backoff schedule without ever touching the wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/socket.hpp"

namespace ipass::serve {

struct RetryPolicy {
  unsigned max_attempts = 8;           // total tries per call (>= 1)
  std::uint32_t base_backoff_ms = 10;  // backoff before attempt 2
  std::uint32_t max_backoff_ms = 2000;
  // Each backoff is drawn uniformly from ((1 - jitter) * b, b] — full value
  // at jitter 0, decorrelated retries at jitter 1.
  double jitter = 0.5;
  std::uint64_t backoff_seed = 1;
  // Trip the breaker after this many CONSECUTIVE failed attempts (across
  // calls); 0 disables the breaker.  While open, calls fail fast with an
  // overload error until cooldown_ms passed, then ONE half-open probe
  // attempt is allowed: success closes the breaker, failure re-opens it.
  unsigned breaker_threshold = 8;
  std::uint32_t breaker_cooldown_ms = 250;
};

struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t no_response_failures = 0;
  std::uint64_t truncated_responses = 0;
  std::uint64_t oversized_responses = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t breaker_trips = 0;
};

class ResilientClient {
 public:
  using Sleep = std::function<void(std::chrono::milliseconds)>;
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  // The connection is lazy: nothing happens until call().  Pass a fake
  // sleeper/clock in tests for wall-clock-free determinism.
  ResilientClient(std::string host, std::uint16_t port, RetryPolicy policy = {},
                  Sleep sleep = {}, Clock clock = {});

  // One request, retried until success, retry-budget exhaustion, deadline
  // expiry or an open breaker.  `deadline_ms` (0 = none) bounds the WHOLE
  // call including backoff sleeps: the remaining budget shrinks across
  // attempts and a backoff never sleeps past it.  Throws PreconditionError
  // with ErrorCode::Deadline (deadline), ErrorCode::Overload (budget
  // exhausted / breaker open) naming the last transport failure.
  std::string call(const std::string& request, std::int64_t deadline_ms = 0);

  const ClientStats& stats() const { return stats_; }
  // Every backoff actually slept, in order — what the chaos soak pins
  // across identical runs.
  const std::vector<std::uint32_t>& backoff_log() const { return backoff_log_; }
  bool breaker_open() const { return breaker_open_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  // One transport attempt; returns true with `response` filled on success,
  // false after classifying the failure into stats_.
  bool attempt_once(const std::string& request, std::string& response);
  std::uint32_t next_backoff_ms(unsigned attempt);

  const std::string host_;
  const std::uint16_t port_;
  const RetryPolicy policy_;
  Sleep sleep_;
  Clock clock_;
  Pcg32 backoff_rng_;
  std::unique_ptr<SocketClient> conn_;
  ClientStats stats_;
  std::vector<std::uint32_t> backoff_log_;
  unsigned consecutive_failures_ = 0;
  bool breaker_open_ = false;
  std::chrono::steady_clock::time_point breaker_opened_at_{};
  std::string last_failure_;
};

}  // namespace ipass::serve
