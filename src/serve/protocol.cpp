#include "serve/protocol.hpp"

#include <cmath>

#include "common/jsonfmt.hpp"
#include "common/strfmt.hpp"
#include "kits/kit_json.hpp"

namespace ipass::serve {

namespace {
constexpr const char* kContext = "serve request";

[[noreturn]] void reject(const std::string& what) {
  throw PreconditionError(strf("%s: %s", kContext, what.c_str()),
                          ErrorCode::Validation);
}
}  // namespace

ProbeKind probe_kind(const std::string& text) {
  // Fast reject: a probe must literally contain the "kind" key.  (Inline-kit
  // requests can contain the substring inside the kit document; they survive
  // the full parse below as non-probes.)
  if (text.find("\"kind\"") == std::string::npos) return ProbeKind::None;
  try {
    const JsonValue root = parse_json(text, "probe");
    if (root.type != JsonValue::Type::Object) return ProbeKind::None;
    for (const auto& [key, value] : root.object) {
      if (key == "kind") {
        if (value.type != JsonValue::Type::String) return ProbeKind::None;
        if (value.string == "health") return ProbeKind::Health;
        if (value.string == "stats") return ProbeKind::Stats;
        return ProbeKind::None;
      }
    }
  } catch (const std::exception&) {
    // Not even JSON — let the normal request path produce the parse error.
  }
  return ProbeKind::None;
}

bool is_health_request(const std::string& text) {
  return probe_kind(text) == ProbeKind::Health;
}

bool is_stats_request(const std::string& text) {
  return probe_kind(text) == ProbeKind::Stats;
}

AssessmentRequest parse_request(const std::string& text) {
  const JsonValue root = parse_json(text, kContext);
  ObjectReader r(root, "request", kContext);
  AssessmentRequest req;
  const std::string kind = r.str_or("kind", "assess");
  if (kind != "assess") {
    // 'health' and 'stats' land here only when a probe was sequenced into
    // the admitted request stream (e.g. a stray probe line inside a journal)
    // — probes must never consume a sequence number, so the gate refuses
    // them instead of answering.
    reject(strf("unknown request kind '%s' (health/stats probes are answered "
                "at admission; everything else must be 'assess')",
                kind.c_str()));
  }
  req.id = r.str("id");
  if (req.id.empty()) reject("'id' must not be empty");

  const JsonValue* inline_kit = r.find("kit", JsonValue::Type::Object);
  req.kit_name = r.str_or("kit_name", "");
  if (inline_kit != nullptr && !req.kit_name.empty()) {
    reject("send exactly one of 'kit' and 'kit_name', not both");
  }
  if (inline_kit == nullptr && req.kit_name.empty()) {
    reject("request needs a 'kit' object or a 'kit_name'");
  }
  if (inline_kit != nullptr) {
    req.has_inline_kit = true;
    req.inline_kit = kits::parse_kit_json_value(*inline_kit);
  }

  req.bom = r.str_or("bom", req.bom);
  req.reference = r.str_or("reference", req.reference);

  const std::string scope = r.str_or("scope", "full");
  if (scope == "full") {
    req.scope = core::PipelineScope::Full;
  } else if (scope == "cost-only") {
    req.scope = core::PipelineScope::CostOnly;
  } else {
    reject(strf("unknown scope '%s' (expected 'full' or 'cost-only')",
                scope.c_str()));
  }

  req.want_pareto = r.bool_or("pareto", false);
  req.want_sensitivity = r.bool_or("sensitivity", false);
  if (req.want_sensitivity && req.scope != core::PipelineScope::Full) {
    reject("sensitivity needs scope 'full'");
  }

  if (const JsonValue* w = r.find("weights", JsonValue::Type::Object)) {
    ObjectReader wr(*w, "request.weights", kContext);
    req.weights.performance = wr.num_or("performance", 1.0);
    req.weights.size = wr.num_or("size", 1.0);
    req.weights.cost = wr.num_or("cost", 1.0);
    wr.done();
  }

  if (const JsonValue* v = r.find("volume", JsonValue::Type::Number)) {
    req.volume = v->number;
    if (!(req.volume > 0.0) || !std::isfinite(req.volume)) {
      reject("'volume' must be a positive finite number");
    }
  }

  if (const JsonValue* d = r.find("deadline_ms", JsonValue::Type::Number)) {
    if (!(d->number >= 0.0) || d->number != std::floor(d->number) ||
        d->number > 86400000.0) {
      reject("'deadline_ms' must be a whole number of milliseconds in [0, 86400000]");
    }
    req.deadline_ms = static_cast<std::int64_t>(d->number);
  }

  r.done();
  return req;
}

std::string study_cache_key(const AssessmentRequest& request) {
  std::string key;
  key.reserve(128);
  key += "bom=";
  key += request.bom;
  key += ";reference=";
  key += request.reference;
  key += ";scope=";
  key += request.scope == core::PipelineScope::Full ? "full" : "cost-only";
  key += ";kit=";
  if (request.has_inline_kit) {
    // Canonical %.17g serialization: two inline documents that parse to the
    // same kit (whitespace, field order) share one compile artifact.
    key += kits::kit_json(request.inline_kit);
  } else {
    key += "name:";
    key += request.kit_name;
  }
  return key;
}

std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message) {
  return strf("{\"id\": \"%s\", \"status\": \"error\", \"code\": \"%s\", \"message\": \"%s\"}",
              json_escape(id).c_str(), error_code_name(code),
              json_escape(message).c_str());
}

}  // namespace ipass::serve
