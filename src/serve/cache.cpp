#include "serve/cache.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace ipass::serve {

namespace {

// Process-wide mirrors of the per-cache Stats: every CompiledStudyCache in
// the process feeds the same counters, so the metrics dump aggregates cache
// behavior across service instances (counters are monotone; per-instance
// numbers stay available through stats()).
struct CacheMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& waits;
  metrics::Counter& evictions;
  metrics::Counter& failures;

  static CacheMetrics& instance() {
    static CacheMetrics m{
        metrics::global_metrics().counter("serve_cache_hits_total"),
        metrics::global_metrics().counter("serve_cache_misses_total"),
        metrics::global_metrics().counter("serve_cache_waits_total"),
        metrics::global_metrics().counter("serve_cache_evictions_total"),
        metrics::global_metrics().counter("serve_cache_failures_total"),
    };
    return m;
  }
};

}  // namespace

CompiledStudyCache::CompiledStudyCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "CompiledStudyCache: capacity must be at least 1");
}

std::shared_ptr<const core::CompiledStudy> CompiledStudyCache::get_or_compile(
    const std::string& key, const Compile& compile, CacheOutcome* outcome) {
  std::shared_ptr<Inflight> flight;
  {
    std::unique_lock<std::mutex> lk(m_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      CacheMetrics::instance().hits.add();
      if (outcome != nullptr) *outcome = CacheOutcome::Hit;
      it->second.last_used = ++tick_;
      return it->second.study;
    }
    const auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Single-flight: someone else is compiling this key — wait for their
      // result instead of compiling it again.
      ++stats_.waits;
      CacheMetrics::instance().waits.add();
      if (outcome != nullptr) *outcome = CacheOutcome::Wait;
      flight = fit->second;
      lk.unlock();
      std::unique_lock<std::mutex> flk(flight->m);
      flight->cv.wait(flk, [&] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      return flight->study;
    }
    ++stats_.misses;
    CacheMetrics::instance().misses.add();
    if (outcome != nullptr) *outcome = CacheOutcome::Miss;
    flight = std::make_shared<Inflight>();
    inflight_[key] = flight;
  }

  // Compile outside the cache lock: hits and unrelated compiles proceed.
  std::shared_ptr<const core::CompiledStudy> study;
  std::exception_ptr error;
  try {
    study = compile();
    ensure(study != nullptr, "CompiledStudyCache: compile returned null");
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    inflight_.erase(key);
    if (!error) {
      entries_[key] = Entry{study, ++tick_};
      trim_locked();
    } else {
      ++stats_.failures;
      CacheMetrics::instance().failures.add();
    }
  }
  {
    std::lock_guard<std::mutex> flk(flight->m);
    flight->study = study;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();

  if (error) std::rethrow_exception(error);
  return study;
}

bool CompiledStudyCache::evict(const std::string& key) {
  std::lock_guard<std::mutex> lk(m_);
  const bool existed = entries_.erase(key) > 0;
  if (existed) {
    ++stats_.evictions;
    CacheMetrics::instance().evictions.add();
  }
  return existed;
}

std::size_t CompiledStudyCache::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return entries_.size();
}

CompiledStudyCache::Stats CompiledStudyCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

void CompiledStudyCache::trim_locked() {
  while (entries_.size() > capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    entries_.erase(lru);
    ++stats_.evictions;
    CacheMetrics::instance().evictions.add();
  }
}

}  // namespace ipass::serve
