#include "moe/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ipass::moe {

namespace {

// Poisson sampler (Knuth); step intensities here are well below 1.  The
// caller precomputes limit = exp(-lambda) once per step — it is the same for
// every simulated unit.  limit >= 1 (lambda <= 0) consumes no randomness,
// matching the historical early return.
int sample_poisson(Pcg32& rng, double limit) {
  if (limit >= 1.0) return 0;
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

// Binomial sampler.  The common case in the flow simulation is tiny n (a
// unit rarely carries more than a few latent faults), where the historical
// per-trial loop is both fastest and locks in the established RNG stream
// consumption that seeded tests depend on.  For larger n, walk the inverted
// CDF: a single uniform and O(np) expected iterations instead of n draws.
int sample_binomial(Pcg32& rng, int n, double p) {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 8) {
    int k = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.bernoulli(p)) ++k;
    }
    return k;
  }
  const double p0 = std::pow(1.0 - p, n);  // P(X = 0)
  if (p0 <= 0.0) {
    // Underflow regime (huge n·p): the pmf recurrence would stay pinned at
    // zero and the walk would always return n.  Fall back to per-trial
    // sampling — rare enough that O(n) does not matter.
    int k = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.bernoulli(p)) ++k;
    }
    return k;
  }
  const double u = rng.uniform();
  double pmf = p0;
  double cdf = pmf;
  const double odds = p / (1.0 - p);
  int k = 0;
  while (u > cdf && k < n) {
    ++k;
    pmf *= odds * static_cast<double>(n - k + 1) / static_cast<double>(k);
    cdf += pmf;
  }
  return k;
}

struct UnitOutcome {
  bool shipped = false;
  bool good = false;
  Ledger spend;
};

// Per-step constants hoisted out of the per-unit loop: the booked spend and
// the Poisson threshold are identical for every simulated unit, so paying
// exp() and the component loop once per step (instead of once per unit per
// step) cuts the per-unit cost substantially.
struct PlannedStep {
  const Step* step = nullptr;
  bool is_test = false;
  Ledger spend;               // non-test: everything booked on entry
  double poisson_limit = 1.0; // non-test: exp(-added_fault_intensity)
};

std::vector<PlannedStep> plan_steps(const FlowModel& flow) {
  std::vector<PlannedStep> plan;
  plan.reserve(flow.steps().size());
  for (const Step& s : flow.steps()) {
    PlannedStep p;
    p.step = &s;
    p.is_test = s.kind == Step::Kind::Test;
    if (!p.is_test) {
      p.spend.add(s.category, s.cost + s.cost_per_component * s.component_count());
      for (const ComponentInput& c : s.components) {
        p.spend.add(c.category, c.unit_cost * c.count);
      }
      const double lambda = s.added_fault_intensity();
      p.poisson_limit = lambda <= 0.0 ? 1.0 : std::exp(-lambda);
    }
    plan.push_back(p);
  }
  return plan;
}

UnitOutcome run_unit(const std::vector<PlannedStep>& plan, Pcg32& rng) {
  UnitOutcome out;
  int faults = 0;
  for (const PlannedStep& p : plan) {
    const Step& s = *p.step;
    if (p.is_test) {
      out.spend.add(CostCategory::Test, s.cost);
      int detected = sample_binomial(rng, faults, s.fault_coverage);
      if (detected > 0) {
        bool recovered = false;
        if (s.on_fail.rework) {
          for (int attempt = 0; attempt < s.on_fail.max_attempts && !recovered; ++attempt) {
            out.spend.add(CostCategory::Assembly, s.on_fail.rework_cost);
            recovered = rng.bernoulli(s.on_fail.rework_success);
          }
        }
        if (!recovered) return out;  // scrapped: money stays sunk
        faults = 0;  // successful rework clears the unit
      } else {
        // All faults escaped this test; they stay latent.
      }
      continue;
    }

    out.spend += p.spend;
    faults += sample_poisson(rng, p.poisson_limit);
  }
  out.shipped = true;
  out.good = faults == 0;
  return out;
}

// Everything one batch contributes; folded in batch order by the reduction.
struct McAccum {
  Ledger spend;
  std::size_t shipped = 0;
  std::size_t good = 0;
  std::size_t units = 0;
  RunningStats batch_final_cost;  // one point per batch with shipped > 0
};

}  // namespace

McReport evaluate_monte_carlo(const FlowModel& flow, const McOptions& options) {
  require(!flow.steps().empty(), "evaluate_monte_carlo: empty flow");
  const std::size_t n =
      options.samples > 0 ? options.samples : static_cast<std::size_t>(flow.volume());
  require(n >= 1, "evaluate_monte_carlo: need at least one sample");
  const std::size_t batches = std::max<std::size_t>(1, std::min(options.batches, n));

  // NRE is amortized over the production volume (Eq. 1), independent of how
  // many units the simulation samples.
  const double nre_per_started = flow.nre_total() / flow.volume();

  // Batch sizes depend only on (n, batches): the remainder is spread over
  // the leading batches, same as the historical serial split.
  std::vector<std::size_t> batch_sizes(batches);
  std::size_t done = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    batch_sizes[b] = (n - done) / (batches - b);
    done += batch_sizes[b];
  }
  ensure(done == n, "evaluate_monte_carlo: batch split mismatch");

  const std::vector<PlannedStep> plan = plan_steps(flow);
  const McAccum total = parallel_reduce<McAccum>(
      batches, 1,
      [&](std::size_t b, std::size_t /*begin*/, std::size_t /*end*/) {
        // Batch b's dedicated RNG stream: the determinism contract.
        Pcg32 rng(options.seed, b);
        McAccum a;
        a.units = batch_sizes[b];
        double batch_spend = 0.0;
        std::size_t batch_shipped = 0;
        for (std::size_t i = 0; i < batch_sizes[b]; ++i) {
          const UnitOutcome u = run_unit(plan, rng);
          a.spend += u.spend;
          batch_spend += u.spend.total();
          if (u.shipped) {
            ++a.shipped;
            ++batch_shipped;
            if (u.good) ++a.good;
          }
        }
        if (batch_shipped > 0) {
          a.batch_final_cost.add(
              (batch_spend + nre_per_started * static_cast<double>(batch_sizes[b])) /
              static_cast<double>(batch_shipped));
        }
        return a;
      },
      [](McAccum& acc, McAccum&& part) {
        acc.spend += part.spend;
        acc.shipped += part.shipped;
        acc.good += part.good;
        acc.units += part.units;
        acc.batch_final_cost.merge(part.batch_final_cost);
      },
      options.threads);

  ensure(total.units == n, "evaluate_monte_carlo: sample count mismatch");
  ensure(total.shipped > 0, "evaluate_monte_carlo: nothing shipped");
  const std::size_t shipped = total.shipped;
  const std::size_t good = total.good;

  McReport mc;
  mc.samples = n;
  mc.seed = options.seed;
  mc.shipped_units = shipped;
  mc.scrapped_units = n - shipped;
  mc.escaped_defectives = shipped - good;
  mc.final_cost_ci95 = total.batch_final_cost.ci95_half_width();

  CostReport& r = mc.report;
  r.flow_name = flow.name();
  r.volume = static_cast<double>(n);
  r.shipped_fraction = static_cast<double>(shipped) / static_cast<double>(n);
  r.shipped_units = static_cast<double>(shipped);
  r.good_fraction = static_cast<double>(good) / static_cast<double>(n);
  r.escaped_defect_rate =
      1.0 - static_cast<double>(good) / static_cast<double>(shipped);
  r.direct_cost = flow.direct_unit_cost();
  r.direct_ledger = flow.direct_unit_ledger();
  r.spend_ledger = total.spend.scaled(1.0 / static_cast<double>(n));
  r.total_spend_per_started = r.spend_ledger.total();
  r.nre_per_shipped = nre_per_started / r.shipped_fraction;
  r.final_cost_per_shipped =
      (total.spend.total() + nre_per_started * static_cast<double>(n)) /
      static_cast<double>(shipped);
  r.yield_loss_per_shipped = r.final_cost_per_shipped - r.direct_cost - r.nre_per_shipped;
  return mc;
}

}  // namespace ipass::moe
