#include "moe/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ipass::moe {

namespace {

// Poisson sampler (Knuth); step intensities here are well below 1.
int sample_poisson(Pcg32& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

int sample_binomial(Pcg32& rng, int n, double p) {
  int k = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++k;
  }
  return k;
}

struct UnitOutcome {
  bool shipped = false;
  bool good = false;
  Ledger spend;
};

UnitOutcome run_unit(const FlowModel& flow, Pcg32& rng) {
  UnitOutcome out;
  int faults = 0;
  for (const Step& s : flow.steps()) {
    if (s.kind == Step::Kind::Test) {
      out.spend.add(CostCategory::Test, s.cost);
      int detected = sample_binomial(rng, faults, s.fault_coverage);
      if (detected > 0) {
        bool recovered = false;
        if (s.on_fail.rework) {
          for (int attempt = 0; attempt < s.on_fail.max_attempts && !recovered; ++attempt) {
            out.spend.add(CostCategory::Assembly, s.on_fail.rework_cost);
            recovered = rng.bernoulli(s.on_fail.rework_success);
          }
        }
        if (!recovered) return out;  // scrapped: money stays sunk
        faults = 0;  // successful rework clears the unit
      } else {
        // All faults escaped this test; they stay latent.
      }
      continue;
    }

    out.spend.add(s.category, s.cost + s.cost_per_component * s.component_count());
    for (const ComponentInput& c : s.components) {
      out.spend.add(c.category, c.unit_cost * c.count);
    }
    faults += sample_poisson(rng, s.added_fault_intensity());
  }
  out.shipped = true;
  out.good = faults == 0;
  return out;
}

}  // namespace

McReport evaluate_monte_carlo(const FlowModel& flow, const McOptions& options) {
  require(!flow.steps().empty(), "evaluate_monte_carlo: empty flow");
  const std::size_t n =
      options.samples > 0 ? options.samples : static_cast<std::size_t>(flow.volume());
  require(n >= 1, "evaluate_monte_carlo: need at least one sample");
  const std::size_t batches = std::max<std::size_t>(1, std::min(options.batches, n));

  Pcg32 rng(options.seed);
  Ledger spend_total;
  std::size_t shipped = 0;
  std::size_t good = 0;
  RunningStats batch_final_cost;
  // NRE is amortized over the production volume (Eq. 1), independent of how
  // many units the simulation samples.
  const double nre_per_started = flow.nre_total() / flow.volume();

  std::size_t done = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t batch_n = (n - done) / (batches - b);
    double batch_spend = 0.0;
    std::size_t batch_shipped = 0;
    for (std::size_t i = 0; i < batch_n; ++i) {
      const UnitOutcome u = run_unit(flow, rng);
      spend_total += u.spend;
      batch_spend += u.spend.total();
      if (u.shipped) {
        ++shipped;
        ++batch_shipped;
        if (u.good) ++good;
      }
    }
    done += batch_n;
    if (batch_shipped > 0) {
      batch_final_cost.add(
          (batch_spend + nre_per_started * static_cast<double>(batch_n)) /
          static_cast<double>(batch_shipped));
    }
  }
  ensure(done == n, "evaluate_monte_carlo: batch split mismatch");
  ensure(shipped > 0, "evaluate_monte_carlo: nothing shipped");

  McReport mc;
  mc.samples = n;
  mc.seed = options.seed;
  mc.shipped_units = shipped;
  mc.scrapped_units = n - shipped;
  mc.escaped_defectives = shipped - good;
  mc.final_cost_ci95 = batch_final_cost.ci95_half_width();

  CostReport& r = mc.report;
  r.flow_name = flow.name();
  r.volume = static_cast<double>(n);
  r.shipped_fraction = static_cast<double>(shipped) / static_cast<double>(n);
  r.shipped_units = static_cast<double>(shipped);
  r.good_fraction = static_cast<double>(good) / static_cast<double>(n);
  r.escaped_defect_rate =
      1.0 - static_cast<double>(good) / static_cast<double>(shipped);
  r.direct_cost = flow.direct_unit_cost();
  r.direct_ledger = flow.direct_unit_ledger();
  r.spend_ledger = spend_total.scaled(1.0 / static_cast<double>(n));
  r.total_spend_per_started = r.spend_ledger.total();
  r.nre_per_shipped = nre_per_started / r.shipped_fraction;
  r.final_cost_per_shipped =
      (spend_total.total() + nre_per_started * static_cast<double>(n)) /
      static_cast<double>(shipped);
  r.yield_loss_per_shipped = r.final_cost_per_shipped - r.direct_cost - r.nre_per_shipped;
  return mc;
}

}  // namespace ipass::moe
