#include "moe/yield.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/flow_walk_kernel.hpp"

namespace ipass::moe {

namespace {

double area_yield_value(const AreaYield& y) {
  require(y.defects_per_cm2 >= 0.0, "AreaYield: negative defect density");
  require(y.area_cm2 >= 0.0, "AreaYield: negative area");
  const double ad = y.area_cm2 * y.defects_per_cm2;
  if (ad == 0.0) return 1.0;
  switch (y.model) {
    case DefectModel::Poisson:
      return std::exp(-ad);
    case DefectModel::Murphy: {
      const double m = (1.0 - std::exp(-ad)) / ad;
      return m * m;
    }
    case DefectModel::Seeds:
      return 1.0 / (1.0 + ad);
  }
  throw InvariantError("area_yield_value: unknown defect model");
}

}  // namespace

double yield_value(const YieldSpec& spec) {
  if (const auto* f = std::get_if<FixedYield>(&spec)) {
    require(f->value > 0.0 && f->value <= 1.0, "FixedYield: value must be in (0,1]");
    return f->value;
  }
  if (const auto* j = std::get_if<PerJointYield>(&spec)) {
    require(j->per_joint > 0.0 && j->per_joint <= 1.0,
            "PerJointYield: per-joint yield must be in (0,1]");
    require(j->joints >= 0, "PerJointYield: negative joint count");
    // The shared chiplet-bonding expression (pow(y, n), bit-identical to
    // the historical inline form): the flow-walk kernel owns it so every
    // engine compounds per-joint/per-die yields identically.
    return core::compound_bond_yield(j->per_joint, j->joints);
  }
  return area_yield_value(std::get<AreaYield>(spec));
}

double fault_intensity(const YieldSpec& spec) { return -std::log(yield_value(spec)); }

double defect_density_for_yield(DefectModel model, double target_yield, double area_cm2) {
  require(target_yield > 0.0 && target_yield <= 1.0,
          "defect_density_for_yield: target must be in (0,1]");
  require(area_cm2 > 0.0, "defect_density_for_yield: area must be positive");
  if (target_yield == 1.0) return 0.0;
  switch (model) {
    case DefectModel::Poisson:
      return -std::log(target_yield) / area_cm2;
    case DefectModel::Seeds:
      return (1.0 / target_yield - 1.0) / area_cm2;
    case DefectModel::Murphy: {
      // Invert ((1-e^-x)/x)^2 = y by bisection on x = A*D0.
      double lo = 1e-12;
      double hi = 1e3;
      for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double m = (1.0 - std::exp(-mid)) / mid;
        if (m * m > target_yield) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return 0.5 * (lo + hi) / area_cm2;
    }
  }
  throw InvariantError("defect_density_for_yield: unknown defect model");
}

}  // namespace ipass::moe
