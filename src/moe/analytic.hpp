// Closed-form expected-value evaluation of a FlowModel.
//
// Faults are Poisson: every step with yield y adds intensity -ln(y) to each
// alive unit.  A test with coverage c scraps an alive unit with probability
// 1 - exp(-lambda c) and thins the survivors' intensity to lambda (1 - c).
// This makes the analytic evaluator the exact expectation of the
// Monte-Carlo engine, not an approximation of it (the two are cross-checked
// in tests and in bench_ablation_mc_vs_analytic).
//
// Rework is supported with one simplification: a successfully reworked unit
// is assumed fault-free afterwards (see DESIGN.md).
#pragma once

#include "moe/flow.hpp"
#include "moe/report.hpp"

namespace ipass::moe {

CostReport evaluate_analytic(const FlowModel& flow);

}  // namespace ipass::moe
