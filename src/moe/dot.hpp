// Render a FlowModel as Graphviz DOT and as an ASCII flow diagram
// (reproduces the generic MOE model of Fig 4).
#pragma once

#include <string>

#include "moe/flow.hpp"
#include "moe/report.hpp"

namespace ipass::moe {

// Graphviz export; every node gets an "IDn" label like the paper's figure.
std::string to_dot(const FlowModel& flow);

// ASCII rendering of the main line with component sources, test branches
// and the SCRAP / Collector sinks.  If a report is given, the Fig-4 style
// unit counts are annotated on SCRAP and Collector.
std::string to_ascii(const FlowModel& flow, const CostReport* report = nullptr);

}  // namespace ipass::moe
