#include "moe/dot.hpp"

#include "common/strfmt.hpp"

namespace ipass::moe {

namespace {

const char* step_kind_label(Step::Kind kind) {
  switch (kind) {
    case Step::Kind::Fabricate: return "Carrier";
    case Step::Kind::Process: return "Process";
    case Step::Kind::Assemble: return "Assembly";
    case Step::Kind::Test: return "Test";
    case Step::Kind::Package: return "Process";
  }
  return "?";
}

}  // namespace

std::string to_dot(const FlowModel& flow) {
  std::string out = "digraph moe {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  int id = 0;
  // Component source nodes first (as in Fig 4, IDs 0..).
  std::string edges;
  std::string prev;
  for (const Step& s : flow.steps()) {
    for (const ComponentInput& c : s.components) {
      const std::string node = strf("id%d", id);
      out += strf("  %s [label=\"%s\\nComponent\\nID%d\", style=filled, fillcolor=lightyellow];\n",
                  node.c_str(), c.name.c_str(), id);
      edges += strf("  %s -> step%p [label=\"x%d\"];\n", node.c_str(),
                    static_cast<const void*>(&s), c.count);
      ++id;
    }
  }
  for (const Step& s : flow.steps()) {
    const std::string node = strf("step%p", static_cast<const void*>(&s));
    const char* color = s.kind == Step::Kind::Test ? "lightblue" : "white";
    out += strf("  %s [label=\"%s\\n%s\\nID%d\", style=filled, fillcolor=%s];\n",
                node.c_str(), s.name.c_str(), step_kind_label(s.kind), id, color);
    ++id;
    if (!prev.empty()) edges += strf("  %s -> %s;\n", prev.c_str(), node.c_str());
    if (s.kind == Step::Kind::Test) {
      const std::string scrap = strf("scrap%d", id);
      out += strf("  %s [label=\"SCRAP\\nID%d\", style=filled, fillcolor=lightpink];\n",
                  scrap.c_str(), id);
      ++id;
      edges += strf("  %s -> %s [label=\"fail\"];\n", node.c_str(), scrap.c_str());
    }
    prev = node;
  }
  out += strf("  collector [label=\"Modules to be shipped\\nCollector\\nID%d\", "
              "style=filled, fillcolor=lightgreen];\n", id);
  if (!prev.empty()) edges += strf("  %s -> collector;\n", prev.c_str());
  out += edges;
  out += "}\n";
  return out;
}

std::string to_ascii(const FlowModel& flow, const CostReport* report) {
  std::string out;
  out += strf("=== MOE production model: %s ===\n", flow.name().c_str());
  out += strf("volume: %.0f started units, NRE: %.0f\n\n", flow.volume(), flow.nre_total());
  int id = -1;
  for (const Step& s : flow.steps()) {
    ++id;
    for (const ComponentInput& c : s.components) {
      out += strf("        [Component] %-28s x%-4d  cost %.3f  yield %.2f%%\n",
                  c.name.c_str(), c.count, c.unit_cost, c.incoming_yield * 100.0);
    }
    switch (s.kind) {
      case Step::Kind::Test:
        out += strf("  ID%-2d <%s> %-30s cost %.3f  coverage %.1f%%\n", id, "Test",
                    s.name.c_str(), s.cost, s.fault_coverage * 100.0);
        out += strf("        |-- fail --> SCRAP%s\n",
                    s.on_fail.rework ? " (after rework attempts)" : "");
        break;
      default:
        out += strf("  ID%-2d <%s> %-30s cost %.3f  yield %.3f%%\n", id,
                    step_kind_label(s.kind), s.name.c_str(),
                    s.cost + s.cost_per_component * s.component_count(),
                    yield_value(s.yield) * 100.0);
        break;
    }
    out += "        |\n";
  }
  if (report != nullptr) {
    const double scrapped = report->volume - report->shipped_units;
    out += strf("  [SCRAP]     %.0f units\n", scrapped);
    out += strf("  [Collector] %.0f modules to be shipped\n", report->shipped_units);
  } else {
    out += "  [Collector] modules to be shipped\n";
  }
  return out;
}

}  // namespace ipass::moe
