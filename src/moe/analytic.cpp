#include "moe/analytic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ipass::moe {

CostReport evaluate_analytic(const FlowModel& flow) {
  require(!flow.steps().empty(), "evaluate_analytic: empty flow");

  double alive = 1.0;           // fraction of started units still in line
  double lambda = 0.0;          // expected latent faults per alive unit
  Ledger spend;                 // expected spend per started unit
  Ledger unit_acc;              // accumulated cost of one unit up to "now"
  double scrap_value = 0.0;     // money sunk into scrapped units
  double rework_spend = 0.0;

  for (const Step& s : flow.steps()) {
    if (s.kind == Step::Kind::Test) {
      // Everyone alive pays for the test.
      spend.add(CostCategory::Test, alive * s.cost);
      unit_acc.add(CostCategory::Test, s.cost);

      const double p_detect = 1.0 - std::exp(-lambda * s.fault_coverage);
      const double detected = alive * p_detect;
      double scrapped = detected;
      double recovered = 0.0;
      if (s.on_fail.rework && detected > 0.0) {
        rework_spend += detected * s.on_fail.rework_cost;
        spend.add(CostCategory::Assembly, detected * s.on_fail.rework_cost);
        recovered = detected * s.on_fail.rework_success;
        scrapped = detected - recovered;
      }
      scrap_value += scrapped * unit_acc.total();
      const double survivors = alive - detected;
      const double lambda_survivors = lambda * (1.0 - s.fault_coverage);
      // Recovered units rejoin fault-free; mix the intensities.
      alive = survivors + recovered;
      ensure(alive > 0.0, "evaluate_analytic: everything scrapped");
      lambda = (survivors * lambda_survivors) / alive;
      continue;
    }

    const double step_cost = s.cost + s.cost_per_component * s.component_count();
    spend.add(s.category, alive * step_cost);
    unit_acc.add(s.category, step_cost);
    for (const ComponentInput& c : s.components) {
      spend.add(c.category, alive * c.unit_cost * c.count);
      unit_acc.add(c.category, c.unit_cost * c.count);
    }
    lambda += s.added_fault_intensity();
  }

  CostReport r;
  r.flow_name = flow.name();
  r.volume = flow.volume();
  r.shipped_fraction = alive;
  r.shipped_units = alive * flow.volume();
  r.good_fraction = alive * std::exp(-lambda);
  r.escaped_defect_rate = 1.0 - std::exp(-lambda);
  r.direct_cost = flow.direct_unit_cost();
  r.direct_ledger = flow.direct_unit_ledger();
  r.total_spend_per_started = spend.total();
  r.spend_ledger = spend;
  r.nre_per_shipped = flow.nre_total() / (flow.volume() * alive);
  r.final_cost_per_shipped =
      (spend.total() + flow.nre_total() / flow.volume()) / alive;
  // Yield loss: everything beyond one clean pass and the NRE share.
  r.yield_loss_per_shipped = r.final_cost_per_shipped - r.direct_cost - r.nre_per_shipped;
  ensure(scrap_value + rework_spend >= -1e-9, "evaluate_analytic: negative scrap value");
  return r;
}

}  // namespace ipass::moe
