#include "moe/analytic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/flow_walk_kernel.hpp"

namespace ipass::moe {

namespace {

// Full-fidelity instantiation of the shared walk kernel: per-category spend
// and unit-accumulation ledgers, rework, and scrap-value tracking.
struct AnalyticWalkPolicy {
  Ledger spend;                 // expected spend per started unit
  Ledger unit_acc;              // accumulated cost of one unit up to "now"
  double scrap_value = 0.0;     // money sunk into scrapped units
  double rework_spend = 0.0;

  static bool is_test(const Step& s) { return s.kind == Step::Kind::Test; }
  static double coverage(const Step& s) { return s.fault_coverage; }

  void book_test(const Step& s, double alive) {
    // Everyone alive pays for the test.
    spend.add(CostCategory::Test, alive * s.cost);
    unit_acc.add(CostCategory::Test, s.cost);
  }

  static double exp_value(double x) { return std::exp(x); }

  double rework(const Step& s, double detected) {
    if (!s.on_fail.rework || !(detected > 0.0)) return 0.0;
    rework_spend += detected * s.on_fail.rework_cost;
    spend.add(CostCategory::Assembly, detected * s.on_fail.rework_cost);
    return detected * s.on_fail.rework_success;
  }

  void on_scrapped(double scrapped) { scrap_value += scrapped * unit_acc.total(); }

  static const char* all_scrapped_message() {
    return "evaluate_analytic: everything scrapped";
  }

  void book_step(const Step& s, double alive) {
    const double step_cost = s.cost + s.cost_per_component * s.component_count();
    spend.add(s.category, alive * step_cost);
    unit_acc.add(s.category, step_cost);
    for (const ComponentInput& c : s.components) {
      spend.add(c.category, alive * c.unit_cost * c.count);
      unit_acc.add(c.category, c.unit_cost * c.count);
    }
  }

  static double added_lambda(const Step& s) { return s.added_fault_intensity(); }
};

}  // namespace

CostReport evaluate_analytic(const FlowModel& flow) {
  require(!flow.steps().empty(), "evaluate_analytic: empty flow");

  AnalyticWalkPolicy walk;
  const core::WalkOutcome out = core::walk_flow_steps(flow.steps(), walk);
  const double alive = out.alive;
  const double lambda = out.lambda;

  CostReport r;
  r.flow_name = flow.name();
  r.volume = flow.volume();
  r.shipped_fraction = alive;
  r.shipped_units = alive * flow.volume();
  r.good_fraction = alive * std::exp(-lambda);
  r.escaped_defect_rate = 1.0 - std::exp(-lambda);
  r.direct_cost = flow.direct_unit_cost();
  r.direct_ledger = flow.direct_unit_ledger();
  r.total_spend_per_started = walk.spend.total();
  r.spend_ledger = walk.spend;
  r.nre_per_shipped = flow.nre_total() / (flow.volume() * alive);
  r.final_cost_per_shipped =
      (walk.spend.total() + flow.nre_total() / flow.volume()) / alive;
  // Yield loss: everything beyond one clean pass and the NRE share.
  r.yield_loss_per_shipped = r.final_cost_per_shipped - r.direct_cost - r.nre_per_shipped;
  ensure(walk.scrap_value + walk.rework_spend >= -1e-9,
         "evaluate_analytic: negative scrap value");
  return r;
}

}  // namespace ipass::moe
