// Production-flow model: the re-implementation of the Modular Optimization
// Environment (MOE) described in section 4.3 / Fig 4 of the paper and in
// Scheffler et al., IEEE D&T 15(3), 1998.
//
// A FlowModel is a main production line: the carrier (substrate) enters at
// the Fabricate step and moves through Process / Assemble / Test / Package
// steps.  Assemble steps consume component lots (dies, SMDs) with their own
// unit cost and incoming yield.  Test steps detect latent faults with a
// fault coverage and route failing units to SCRAP (optionally through a
// rework loop).  Whatever leaves the last step is collected ("Modules to be
// shipped" in Fig 4).
//
// Faults are latent: a step with yield y < 1 plants Poisson(-ln y) faults
// that only a test can reveal — exactly the paper's "Yield figures are
// translated into faults using Monte Carlo simulation".
#pragma once

#include <string>
#include <vector>

#include "moe/yield.hpp"

namespace ipass::moe {

// Cost attribution buckets (Fig 5 splits final cost into direct cost,
// "thereof chip cost", and yield loss; we keep a finer ledger).
enum class CostCategory : int {
  Substrate = 0,
  Chips,
  Passives,
  Assembly,
  Packaging,
  Test,
  Other,
};
inline constexpr int kCostCategoryCount = 7;

const char* cost_category_name(CostCategory category);

// Per-category money ledger.
struct Ledger {
  double v[kCostCategoryCount] = {0, 0, 0, 0, 0, 0, 0};

  void add(CostCategory category, double amount) { v[static_cast<int>(category)] += amount; }
  double get(CostCategory category) const { return v[static_cast<int>(category)]; }
  double total() const;
  Ledger& operator+=(const Ledger& other);
  Ledger scaled(double factor) const;
};

// A component lot consumed by an Assemble step.
struct ComponentInput {
  std::string name;
  int count = 1;
  double unit_cost = 0.0;
  double incoming_yield = 1.0;  // probability one delivered part is good
  CostCategory category = CostCategory::Passives;
};

// What a test does with a detected-bad unit.
struct FailPolicy {
  bool rework = false;
  double rework_cost = 0.0;
  double rework_success = 0.0;  // probability the rework removes the fault(s)
  int max_attempts = 1;
};

struct Step {
  enum class Kind { Fabricate, Process, Assemble, Test, Package };

  Kind kind = Kind::Process;
  std::string name;
  double cost = 0.0;  // booked per unit entering the step
  CostCategory category = CostCategory::Assembly;
  YieldSpec yield = FixedYield{1.0};
  // Assemble only:
  std::vector<ComponentInput> components;
  double cost_per_component = 0.0;
  // Test only:
  double fault_coverage = 0.0;
  FailPolicy on_fail;

  // Cost of all consumed components (one unit's worth).
  double component_cost() const;
  int component_count() const;
  // Total fault intensity added by this step (step yield + incoming
  // component yields).
  double added_fault_intensity() const;
};

class FlowModel {
 public:
  FlowModel(std::string name, double volume, double nre_total);

  const std::string& name() const { return name_; }
  double volume() const { return volume_; }
  double nre_total() const { return nre_; }
  const std::vector<Step>& steps() const { return steps_; }

  // Builder API (returns *this for chaining).
  FlowModel& fabricate(std::string name, double cost, YieldSpec yield,
                       CostCategory category = CostCategory::Substrate);
  FlowModel& process(std::string name, double cost, YieldSpec yield,
                     CostCategory category = CostCategory::Assembly);
  FlowModel& assemble(std::string name, double step_cost, double cost_per_component,
                      YieldSpec yield, std::vector<ComponentInput> components,
                      CostCategory category = CostCategory::Assembly);
  FlowModel& test(std::string name, double cost, double fault_coverage,
                  FailPolicy on_fail = {});
  FlowModel& package(std::string name, double cost, YieldSpec yield);

  // Direct cost of one unit passing every step once (no yield loss, no NRE).
  double direct_unit_cost() const;
  Ledger direct_unit_ledger() const;

  // Probability that a unit picks up no fault at all along the line.
  double line_yield() const;

 private:
  std::string name_;
  double volume_ = 0.0;
  double nre_ = 0.0;
  std::vector<Step> steps_;
};

}  // namespace ipass::moe
