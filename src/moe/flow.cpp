#include "moe/flow.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ipass::moe {

const char* cost_category_name(CostCategory category) {
  switch (category) {
    case CostCategory::Substrate: return "substrate";
    case CostCategory::Chips: return "chips";
    case CostCategory::Passives: return "passives";
    case CostCategory::Assembly: return "assembly";
    case CostCategory::Packaging: return "packaging";
    case CostCategory::Test: return "test";
    case CostCategory::Other: return "other";
  }
  return "?";
}

double Ledger::total() const {
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum;
}

Ledger& Ledger::operator+=(const Ledger& other) {
  for (int i = 0; i < kCostCategoryCount; ++i) v[i] += other.v[i];
  return *this;
}

Ledger Ledger::scaled(double factor) const {
  Ledger out;
  for (int i = 0; i < kCostCategoryCount; ++i) out.v[i] = v[i] * factor;
  return out;
}

double Step::component_cost() const {
  double sum = 0.0;
  for (const ComponentInput& c : components) sum += c.unit_cost * c.count;
  return sum;
}

int Step::component_count() const {
  int sum = 0;
  for (const ComponentInput& c : components) sum += c.count;
  return sum;
}

double Step::added_fault_intensity() const {
  double lambda = fault_intensity(yield);
  for (const ComponentInput& c : components) {
    require(c.incoming_yield > 0.0 && c.incoming_yield <= 1.0,
            "ComponentInput: incoming yield must be in (0,1]");
    lambda += -std::log(c.incoming_yield) * c.count;
  }
  return lambda;
}

FlowModel::FlowModel(std::string name, double volume, double nre_total)
    : name_(std::move(name)), volume_(volume), nre_(nre_total) {
  require(volume_ > 0.0, "FlowModel: volume must be positive");
  require(nre_ >= 0.0, "FlowModel: NRE must be non-negative");
}

FlowModel& FlowModel::fabricate(std::string name, double cost, YieldSpec yield,
                                CostCategory category) {
  require(steps_.empty(), "FlowModel: fabricate must be the first step");
  Step s;
  s.kind = Step::Kind::Fabricate;
  s.name = std::move(name);
  s.cost = cost;
  s.category = category;
  s.yield = yield;
  steps_.push_back(std::move(s));
  return *this;
}

FlowModel& FlowModel::process(std::string name, double cost, YieldSpec yield,
                              CostCategory category) {
  Step s;
  s.kind = Step::Kind::Process;
  s.name = std::move(name);
  s.cost = cost;
  s.category = category;
  s.yield = yield;
  steps_.push_back(std::move(s));
  return *this;
}

FlowModel& FlowModel::assemble(std::string name, double step_cost, double cost_per_component,
                               YieldSpec yield, std::vector<ComponentInput> components,
                               CostCategory category) {
  Step s;
  s.kind = Step::Kind::Assemble;
  s.name = std::move(name);
  s.cost = step_cost;
  s.cost_per_component = cost_per_component;
  s.category = category;
  s.yield = yield;
  s.components = std::move(components);
  steps_.push_back(std::move(s));
  return *this;
}

FlowModel& FlowModel::test(std::string name, double cost, double fault_coverage,
                           FailPolicy on_fail) {
  require(fault_coverage >= 0.0 && fault_coverage <= 1.0,
          "FlowModel::test: coverage must be in [0,1]");
  Step s;
  s.kind = Step::Kind::Test;
  s.name = std::move(name);
  s.cost = cost;
  s.category = CostCategory::Test;
  s.fault_coverage = fault_coverage;
  s.on_fail = on_fail;
  steps_.push_back(std::move(s));
  return *this;
}

FlowModel& FlowModel::package(std::string name, double cost, YieldSpec yield) {
  Step s;
  s.kind = Step::Kind::Package;
  s.name = std::move(name);
  s.cost = cost;
  s.category = CostCategory::Packaging;
  s.yield = yield;
  steps_.push_back(std::move(s));
  return *this;
}

double FlowModel::direct_unit_cost() const { return direct_unit_ledger().total(); }

Ledger FlowModel::direct_unit_ledger() const {
  Ledger ledger;
  for (const Step& s : steps_) {
    ledger.add(s.category, s.cost + s.cost_per_component * s.component_count());
    for (const ComponentInput& c : s.components) {
      ledger.add(c.category, c.unit_cost * c.count);
    }
  }
  return ledger;
}

double FlowModel::line_yield() const {
  double lambda = 0.0;
  for (const Step& s : steps_) lambda += s.added_fault_intensity();
  return std::exp(-lambda);
}

}  // namespace ipass::moe
