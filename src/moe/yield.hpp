// Yield models for production steps.
//
// Table 2 of the paper quotes fixed per-step yields; the library also
// provides per-joint yields (212 bond wires at 99.99% each) and the three
// classical area-defect-density models (Poisson, Murphy, Seeds) so the
// substrate yield can be tied to the substrate area in ablation studies.
#pragma once

#include <variant>

namespace ipass::moe {

// Fixed probability that the step leaves the unit fault-free.
struct FixedYield {
  double value = 1.0;
};

// Independent joints (bond wires, solder joints): yield = y^joints.
struct PerJointYield {
  double per_joint = 1.0;
  int joints = 1;
};

// Area-driven defect models, yield as a function of defect density D0
// [defects/cm^2] and area A [cm^2].
enum class DefectModel {
  Poisson,  // y = exp(-A D0)
  Murphy,   // y = ((1 - exp(-A D0)) / (A D0))^2
  Seeds,    // y = 1 / (1 + A D0)
};

struct AreaYield {
  DefectModel model = DefectModel::Poisson;
  double defects_per_cm2 = 0.0;
  double area_cm2 = 0.0;
};

using YieldSpec = std::variant<FixedYield, PerJointYield, AreaYield>;

// Evaluate the yield (probability of a fault-free outcome) of a spec.
double yield_value(const YieldSpec& spec);

// Expected number of Poisson faults injected by a step of the given yield:
// lambda = -ln(y).  This is the bookkeeping the analytic evaluator and the
// Monte-Carlo engine share, so the two agree in expectation by
// construction.
double fault_intensity(const YieldSpec& spec);

// Solve an AreaYield model for the defect density that produces a target
// yield at a given area (used to re-anchor ablations at Table-2 values).
double defect_density_for_yield(DefectModel model, double target_yield, double area_cm2);

}  // namespace ipass::moe
