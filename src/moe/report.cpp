#include "moe/report.hpp"

#include "common/strfmt.hpp"

namespace ipass::moe {

std::string CostReport::to_string() const {
  std::string out;
  out += strf("flow: %s\n", flow_name.c_str());
  out += strf("  started units        : %.0f\n", volume);
  out += strf("  shipped fraction     : %.4f (%.0f units)\n", shipped_fraction, shipped_units);
  out += strf("  escaped defect rate  : %.4f%%\n", escaped_defect_rate * 100.0);
  out += strf("  direct cost / unit   : %.3f\n", direct_cost);
  out += strf("    thereof chips      : %.3f\n", direct_ledger.get(CostCategory::Chips));
  out += strf("  yield loss / shipped : %.3f\n", yield_loss_per_shipped);
  out += strf("  NRE / shipped        : %.3f\n", nre_per_shipped);
  out += strf("  FINAL COST / shipped : %.3f  (Eq. 1)\n", final_cost_per_shipped);
  out += "  spend by category (per started unit):\n";
  for (int i = 0; i < kCostCategoryCount; ++i) {
    const auto category = static_cast<CostCategory>(i);
    if (spend_ledger.get(category) > 0.0) {
      out += strf("    %-10s : %.3f\n", cost_category_name(category),
                  spend_ledger.get(category));
    }
  }
  return out;
}

}  // namespace ipass::moe
