// Monte-Carlo evaluation of a FlowModel: the paper's "Yield figures are
// translated into faults using Monte Carlo simulation.  The routed
// components are inspected at the test steps and routed to the respective
// branch."
#pragma once

#include <cstdint>

#include "moe/flow.hpp"
#include "moe/report.hpp"

namespace ipass::moe {

struct McOptions {
  std::size_t samples = 0;  // 0: use the flow's production volume
  std::uint64_t seed = 20000127;  // DATE 2000 :-)
  std::size_t batches = 20;       // batch-mean CI estimation
  // Worker threads; 0 resolves to IPASS_THREADS / hardware concurrency.
  // Results are bit-identical for every thread count (see below).
  unsigned threads = 0;
};

// Evaluate the flow by simulating individual units.
//
// Determinism contract: batch b draws all of its randomness from the
// dedicated RNG stream Pcg32(options.seed, b), batches are the unit of
// parallel work, and batch results are folded in ascending batch order.
// The report is therefore a pure function of (flow, samples, seed, batches)
// — the thread count only changes the wall-clock time.
McReport evaluate_monte_carlo(const FlowModel& flow, const McOptions& options = {});

}  // namespace ipass::moe
