// Cost evaluation results: everything Eq. 1 and Fig 5 need.
//
//   FinalCostShippedUnit =
//     (Sum DirectCost_unit + Sum_all_steps Cost_SCRAP + Sum NRE) / N_shipped
#pragma once

#include <string>

#include "moe/flow.hpp"

namespace ipass::moe {

struct CostReport {
  std::string flow_name;
  double volume = 0.0;             // units started
  double shipped_fraction = 0.0;   // shipped units per started unit
  double shipped_units = 0.0;
  double good_fraction = 0.0;      // shipped AND fault-free, per started unit
  double escaped_defect_rate = 0.0;  // defective fraction among shipped

  // Per-unit economics.
  double direct_cost = 0.0;        // one clean pass through the line
  Ledger direct_ledger;
  double yield_loss_per_shipped = 0.0;  // scrap + rework spend per shipped
  double nre_per_shipped = 0.0;
  double final_cost_per_shipped = 0.0;  // Eq. 1

  // Aggregates (per started unit).
  double total_spend_per_started = 0.0;
  Ledger spend_ledger;

  // Shares for the Fig-5 bar chart.
  double chip_cost_direct() const { return direct_ledger.get(CostCategory::Chips); }

  // Render a one-flow summary block.
  std::string to_string() const;
};

// Monte-Carlo result: a CostReport plus sampling metadata.
struct McReport {
  CostReport report;
  std::size_t samples = 0;
  std::uint64_t seed = 0;
  double final_cost_ci95 = 0.0;    // 95% half-width on final cost/shipped
  std::size_t scrapped_units = 0;
  std::size_t shipped_units = 0;
  std::size_t escaped_defectives = 0;
};

}  // namespace ipass::moe
