// Frequency and impedance denormalization of lowpass prototypes, and the
// classical lowpass-to-bandpass transformation, emitting analyzable
// Circuits.
#pragma once

#include "rf/netlist.hpp"
#include "rf/prototype.hpp"
#include "rf/qmodel.hpp"

namespace ipass::rf {

// Component-quality assignment for a realized filter: every inductor gets
// `inductor_q`, every capacitor `capacitor_q`.
struct ComponentQuality {
  QModel inductor_q = QModel::lossless();
  QModel capacitor_q = QModel::lossless();

  static ComponentQuality lossless() { return {}; }
};

// Denormalize a lowpass prototype to cutoff frequency f_cut (Hz) and system
// impedance z0 (Ohm).  Ports are attached at both ends with the prototype's
// source/load resistance scaling.
Circuit realize_lowpass(const LadderPrototype& proto, double f_cut, double z0,
                        const ComponentQuality& quality = ComponentQuality::lossless());

// Lowpass-to-bandpass transformation: center f0 (Hz), ripple/equal-ripple
// bandwidth bw (Hz), system impedance z0.  Every prototype inductor becomes
// a series resonator, every capacitor a parallel resonator; series traps
// become the standard four-element branch.
Circuit realize_bandpass(const LadderPrototype& proto, double f0, double bw, double z0,
                         const ComponentQuality& quality = ComponentQuality::lossless());

// Lowpass-to-highpass transformation (s -> wc/s): prototype inductors
// become capacitors and vice versa.  All-pole prototypes and elliptic
// mid-shunt ladders are both supported (traps map to series L-C legs).
Circuit realize_highpass(const LadderPrototype& proto, double f_cut, double z0,
                         const ComponentQuality& quality = ComponentQuality::lossless());

// Lowpass-to-bandstop transformation: notch centered at f0 with stop
// bandwidth bw.  Prototype inductors become parallel resonators in the
// series path; capacitors become series resonators to ground.  All-pole
// prototypes only.
Circuit realize_bandstop(const LadderPrototype& proto, double f0, double bw, double z0,
                         const ComponentQuality& quality = ComponentQuality::lossless());

// Element-count accounting for a realized filter (drives area and BOM
// bookkeeping in the core methodology).
struct ElementCount {
  int inductors = 0;
  int capacitors = 0;
  int resistors = 0;
  int total() const { return inductors + capacitors + resistors; }
};
ElementCount count_elements(const Circuit& circuit);

}  // namespace ipass::rf
