// Normalized lowpass prototypes (cutoff 1 rad/s, 1 Ohm source).
//
// Butterworth and Chebyshev come from the classical closed-form g-value
// recursions; elliptic (Cauer) prototypes are synthesized in cauer.cpp by
// Darlington extraction and share the same LadderPrototype representation.
#pragma once

#include <string>
#include <vector>

namespace ipass::rf {

enum class FilterFamily { Butterworth, Chebyshev, Elliptic };

const char* family_name(FilterFamily family);

// One branch of a normalized lowpass ladder, counted from the source side.
struct LadderBranch {
  enum class Topology {
    SeriesL,            // inductance `l` in the signal path
    ShuntC,             // capacitance `c` to ground
    SeriesTrap,         // parallel L-C ("trap") in the signal path: l, c
  };
  Topology topo = Topology::SeriesL;
  double l = 0.0;  // normalized inductance
  double c = 0.0;  // normalized capacitance
};

struct LadderPrototype {
  FilterFamily family = FilterFamily::Butterworth;
  int order = 0;
  double ripple_db = 0.0;        // passband ripple (0 for Butterworth)
  double stopband_db = 0.0;      // achieved stopband attenuation (elliptic only)
  double selectivity = 0.0;      // ws/wp (elliptic only)
  double source_resistance = 1.0;
  double load_resistance = 1.0;
  std::vector<LadderBranch> branches;

  // Sum of the classical g-values (loss estimate input); for elliptic
  // ladders this is the sum of all normalized L and C values, which is the
  // standard generalization.
  double g_sum() const;

  std::string to_string() const;
};

// Butterworth prototype of order n; alternates ShuntC / SeriesL starting
// with a shunt capacitor (pi form, fewest inductors).
LadderPrototype butterworth(int n);

// Chebyshev type-I prototype with `ripple_db` passband ripple.  For even
// orders the load resistance differs from 1 as required by the equal-ripple
// condition.
LadderPrototype chebyshev(int n, double ripple_db);

// Raw Chebyshev g-values g1..gn plus load g_{n+1} (used by the classical
// Cohn loss estimate and by tests against textbook tables).
std::vector<double> chebyshev_g_values(int n, double ripple_db);
std::vector<double> butterworth_g_values(int n);

}  // namespace ipass::rf
