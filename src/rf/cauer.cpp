#include "rf/cauer.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/polynomial.hpp"

namespace ipass::rf {

namespace {

using Cx = std::complex<double>;

// Real-coefficient monic polynomial from a self-conjugate root set.
Poly poly_from_pole_set(const std::vector<Cx>& roots) {
  std::vector<Cx> representatives;
  for (const Cx& r : roots) {
    if (r.imag() > 1e-9) {
      representatives.push_back(r);
    } else if (std::abs(r.imag()) <= 1e-9) {
      representatives.push_back(Cx(r.real(), 0.0));
    }
  }
  return Poly::from_conjugate_roots(representatives);
}

// Substitute w -> -s^2 (duplicated from elliptic.cpp on purpose: the two
// files stay independently readable; the operation is four lines).
Poly subst_neg_s2(const Poly& pw) {
  const int d = pw.degree();
  std::vector<double> out(static_cast<std::size_t>(2 * d) + 1, 0.0);
  for (int i = 0; i <= d; ++i) {
    out[static_cast<std::size_t>(2 * i)] =
        ((i % 2 == 0) ? 1.0 : -1.0) * pw.coefficient(static_cast<std::size_t>(i));
  }
  return Poly(std::move(out));
}

struct ExtractionResult {
  bool ok = false;
  std::vector<LadderBranch> branches;
  double final_conductance = 0.0;
};

// Extract the mid-shunt ladder from Y = num/den, removing the series
// resonators in the order given by `zero_order`.
ExtractionResult extract_ladder(Poly num, Poly den, std::vector<double> zero_order) {
  ExtractionResult result;
  const Poly x = Poly::x();

  for (const double wz : zero_order) {
    const Cx jw(0.0, wz);

    // (a) partial shunt capacitor shifting a zero of Y to jw.
    const Cx y_at = num(jw) / den(jw);
    const double cp = y_at.imag() / wz;
    if (!(cp > 1e-12) || !std::isfinite(cp)) return result;
    LadderBranch shunt;
    shunt.topo = LadderBranch::Topology::ShuntC;
    shunt.c = cp;
    result.branches.push_back(shunt);

    Poly num_shift = num - (x * den) * cp;
    num_shift.trim();

    // (b) full removal of the series L||C trap resonating at wz.
    const Poly factor({wz * wz, 0.0, 1.0});  // s^2 + wz^2
    Poly num_red;
    try {
      num_red = num_shift.divide_exact(factor, 1e-4);
    } catch (const NumericalError&) {
      return result;
    }
    const Cx denom = jw * num_red(jw);
    if (std::abs(denom) < 1e-300) return result;
    const Cx k_cx = den(jw) / denom;
    const double k = k_cx.real();
    if (!(k > 1e-12) || std::abs(k_cx.imag()) > 1e-6 * std::abs(k)) return result;

    LadderBranch trap;
    trap.topo = LadderBranch::Topology::SeriesTrap;
    trap.c = 1.0 / k;
    trap.l = k / (wz * wz);
    result.branches.push_back(trap);

    Poly den_next = den - (x * num_red) * k;
    den_next.trim();
    try {
      den_next = den_next.divide_exact(factor, 1e-4);
    } catch (const NumericalError&) {
      return result;
    }

    num = num_red;
    den = den_next;
    num.trim();
    den.trim();
  }

  // Remaining admittance must be s*C + G with G the load conductance.
  if (num.degree() > 1 || den.degree() != 0) return result;
  const double d0 = den.coefficient(0);
  if (std::abs(d0) < 1e-300) return result;
  const double c_last = num.coefficient(1) / d0;
  const double g_load = num.coefficient(0) / d0;
  if (!(c_last > 1e-12) || !(g_load > 1e-12)) return result;

  LadderBranch last;
  last.topo = LadderBranch::Topology::ShuntC;
  last.c = c_last;
  result.branches.push_back(last);
  result.final_conductance = g_load;
  result.ok = true;
  return result;
}

}  // namespace

EllipticApproximation cauer_approximation(int n, double ripple_db, double selectivity) {
  return elliptic_approximation(n, ripple_db, selectivity);
}

LadderPrototype cauer_lowpass(int n, double ripple_db, double selectivity) {
  const EllipticApproximation ap = elliptic_approximation(n, ripple_db, selectivity);

  // D(s): monic Hurwitz denominator from the poles.
  const Poly d = poly_from_pole_set(ap.poles);
  ensure(d.degree() == n, "cauer_lowpass: Hurwitz polynomial degree mismatch");

  // E(s) = sigma * s * A(-s^2) with A(w) = prod(w - z_i^2); |E/D| -> 1.
  std::vector<double> z2;
  for (const double z : ap.rational.zeros) z2.push_back(z * z);
  const Poly as = subst_neg_s2(Poly::from_real_roots(z2));
  const Poly e_base = Poly::x() * as;

  // Try both reflection-coefficient signs and all orders of transmission-
  // zero extraction; keep the first all-positive ladder.
  std::vector<double> zeros = ap.transmission_zeros;
  std::sort(zeros.begin(), zeros.end());

  for (const double sigma : {+1.0, -1.0}) {
    const Poly e = e_base * sigma;
    Poly y_num = d - e;
    Poly y_den = d + e;
    y_num.trim();
    y_den.trim();
    // Mid-shunt form needs Y(inf) = inf: numerator of higher degree.
    if (y_num.degree() <= y_den.degree()) continue;

    std::vector<double> order = zeros;
    do {
      ExtractionResult r = extract_ladder(y_num, y_den, order);
      if (r.ok) {
        LadderPrototype proto;
        proto.family = FilterFamily::Elliptic;
        proto.order = n;
        proto.ripple_db = ripple_db;
        proto.stopband_db = ap.stopband_db;
        proto.selectivity = selectivity;
        proto.source_resistance = 1.0;
        proto.load_resistance = 1.0 / r.final_conductance;
        proto.branches = std::move(r.branches);
        return proto;
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }

  throw NumericalError("cauer_lowpass: no positive-element extraction order found");
}

}  // namespace ipass::rf
