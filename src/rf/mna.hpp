// AC small-signal analysis by nodal admittance formulation.
//
// Ports are modeled the standard way: a 1 V source behind Z01 drives port 1
// (as its Norton equivalent), port 2 is terminated in Z02, and
//   S11 = 2 V1 - 1,   S21 = 2 V2 sqrt(Z01/Z02).
#pragma once

#include <complex>
#include <vector>

#include "rf/netlist.hpp"

namespace ipass::rf {

using Complex = std::complex<double>;

// S-parameters of a circuit at a single frequency.
struct SPoint {
  double freq = 0.0;
  Complex s11{0.0, 0.0};
  Complex s21{0.0, 0.0};

  // Insertion loss in dB (positive number for a lossy network).
  double il_db() const;
  // Return loss in dB (positive number for a matched network).
  double rl_db() const;
  double s21_db() const;  // 20 log10 |S21| (negative for loss)
};

// Series impedance of an element at frequency f, including the finite-Q
// loss term (L: Z = wL/Q + jwL; C: Z = 1/(wC Q) - j/(wC); R: Z = R).
Complex element_impedance(const Element& element, double freq);

// Analyze the circuit at one frequency.  Both ports must be set and f > 0.
SPoint analyze_at(const Circuit& circuit, double freq);

// Analyze over a list of frequencies.
std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs);

// Frequency grids.
std::vector<double> linspace(double lo, double hi, std::size_t n);
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace ipass::rf
