// AC small-signal analysis by nodal admittance formulation.
//
// Ports are modeled the standard way: a 1 V source behind Z01 drives port 1
// (as its Norton equivalent), port 2 is terminated in Z02, and
//   S11 = 2 V1 - 1,   S21 = 2 V2 sqrt(Z01/Z02).
//
// Three engines share one assembly plan (see detail::StampPlan):
//
//   analyze_at           rebuild + solve per call — simplest, for one-offs;
//   SweepWorkspace       zero-allocation re-stamp + scalar solve per point;
//   BatchSweepWorkspace  W perturbed value sets stamped from the shared
//                        plan and solved together by batch_solve_overwrite.
//
// Every tier is bit-identical to the one below it for the same element
// values: the stamp order, the assembly arithmetic and the solver
// arithmetic are the same, so a batch lane equals a SweepWorkspace point
// equals a fresh analyze_at down to the last bit.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "rf/netlist.hpp"

namespace ipass::rf {

using Complex = std::complex<double>;

// S-parameters of a circuit at a single frequency.
struct SPoint {
  double freq = 0.0;
  Complex s11{0.0, 0.0};
  Complex s21{0.0, 0.0};

  // Insertion loss in dB (positive number for a lossy network).
  double il_db() const;
  // Return loss in dB (positive number for a matched network).
  double rl_db() const;
  double s21_db() const;  // 20 log10 |S21| (negative for loss)
};

// Series impedance of an element at frequency f, including the finite-Q
// loss term (L: Z = wL/Q + jwL; C: Z = 1/(wC Q) - j/(wC); R: Z = R).
Complex element_impedance(const Element& element, double freq);

// Same, with the value supplied separately (used by the sweep workspaces,
// whose perturbed values live outside any Circuit).
Complex impedance_of(ElementKind kind, double value, const QModel& q, double freq);

namespace detail {

// The assembly plan both sweep workspaces share: for every element the
// linear indices of its four admittance-matrix slots, resolved once from
// the circuit topology.
struct StampPlan {
  struct Stamp {
    ElementKind kind = ElementKind::Resistor;
    QModel q = QModel::lossless();
    // Linear indices into the admittance matrix; npos when the node is
    // ground and the slot does not exist.
    std::size_t diag1 = npos;
    std::size_t diag2 = npos;
    std::size_t off12 = npos;
    std::size_t off21 = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t n = 0;  // non-ground node count
  Port port1;
  Port port2;
  std::size_t port1_diag = npos;
  std::size_t port2_diag = npos;
  std::size_t port1_index = 0;  // rhs/solution slot of each port node
  std::size_t port2_index = 0;
  double s21_scale = 1.0;  // sqrt(Z01/Z02), hoisted out of the per-point math
  std::vector<Stamp> stamps;
  std::vector<double> nominal;

  // Builds the plan; both ports must be set and the circuit non-empty.
  static StampPlan build(const Circuit& circuit);
};

}  // namespace detail

// Reusable solver state for repeated analyses of one circuit topology.
//
// Construction assembles the stamp plan once; analyze_at() then re-stamps
// and re-solves entirely in pre-allocated storage — zero heap allocation per
// point — which is what makes dense tolerance Monte-Carlo sweeps cheap.
// Element values can be perturbed per sample via set_value(); results are
// bit-identical to rebuilding a scaled Circuit and calling the free
// analyze_at(), because the assembly order and arithmetic are the same.
class SweepWorkspace {
 public:
  explicit SweepWorkspace(const Circuit& circuit);

  std::size_t element_count() const { return plan_.stamps.size(); }
  double nominal_value(std::size_t element_index) const;
  double value(std::size_t element_index) const;
  void set_value(std::size_t element_index, double value);
  void reset_values();  // restore every element to its nominal value

  // Analyze at one frequency with the current (possibly perturbed) values.
  SPoint analyze_at(double freq);
  double insertion_loss_at(double freq);

 private:
  detail::StampPlan plan_;
  std::vector<double> values_;
  CMatrix y_;
  std::vector<Complex> rhs_;  // the Norton current vector, written once
  std::vector<Complex> x_;    // per-point solve scratch / solution
};

// W independently perturbed copies of one circuit topology, stamped from
// the shared plan and solved together (SoA complex LU, see
// batch_solve_overwrite).  Lane w behaves exactly like a SweepWorkspace
// holding the same values: its S-parameters and insertion loss are
// bit-identical.  This is the tolerance engine's hot path — it consumes
// Monte-Carlo samples in lanes of kToleranceBatchLanes.
class BatchSweepWorkspace {
 public:
  // lanes must be in [1, kMaxBatchLanes].
  BatchSweepWorkspace(const Circuit& circuit, std::size_t lanes);

  std::size_t lanes() const { return lanes_; }
  std::size_t element_count() const { return plan_.stamps.size(); }
  double nominal_value(std::size_t element_index) const;
  double value(std::size_t lane, std::size_t element_index) const;
  // Inline: the tolerance driver calls this for every perturbed element of
  // every sample.
  void set_value(std::size_t lane, std::size_t element_index, double value) {
    require(lane < lanes_ && element_index < plan_.nominal.size(),
            "BatchSweepWorkspace: index out of range");
    require(value > 0.0, "BatchSweepWorkspace::set_value: value must be positive");
    values_[element_index * lanes_ + lane] = value;
  }
  void reset_values();  // every lane back to nominal

  // Analyze every lane at one frequency; out must hold lanes() entries.
  void analyze_at(double freq, SPoint* out);
  // Insertion loss only (skips S11), out must hold lanes() entries.  The
  // values are bit-identical to analyze_at(...).il_db() per lane.
  void insertion_loss_at(double freq, double* out);

 private:
  // Stamp every lane and solve down to solution entry `solved_down_to`
  // (see batch_solve_overwrite); the insertion-loss path stops at the
  // output port's node.
  void stamp_and_solve(double freq, std::size_t solved_down_to);
  template <typename LaneCount>
  void stamp_lanes(double freq, LaneCount w_count);

  detail::StampPlan plan_;
  std::size_t lanes_ = 0;
  std::vector<double> values_;  // lane-major: [element * lanes + lane]
  // Per-point admittances, lane-major; the last two entries are the
  // constant port admittances (written once).
  std::vector<double> admre_;
  std::vector<double> admim_;
  // Slot plan: for every matrix slot, the CSR list of signed admittance
  // contributions in stamp order — assembly then *stores* each slot once
  // instead of read-modify-writing four scattered slots per element, and
  // slots with no contributions are stored as zero (replacing set_zero).
  std::vector<std::uint32_t> slot_offsets_;
  std::vector<std::uint32_t> slot_source_;
  std::vector<double> slot_sign_;
  BatchCMatrix y_;
  BatchCVector rhs_;  // the Norton current lanes, written once
  BatchCVector x_;    // per-point solve scratch / solutions
};

// Analyze the circuit at one frequency.  Both ports must be set and f > 0.
SPoint analyze_at(const Circuit& circuit, double freq);

// Analyze over a list of frequencies.
std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs);

// Frequency grids between two distinct endpoints; descending sweeps
// (hi < lo) are supported and produce a descending grid.
std::vector<double> linspace(double lo, double hi, std::size_t n);
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace ipass::rf
