// AC small-signal analysis by nodal admittance formulation.
//
// Ports are modeled the standard way: a 1 V source behind Z01 drives port 1
// (as its Norton equivalent), port 2 is terminated in Z02, and
//   S11 = 2 V1 - 1,   S21 = 2 V2 sqrt(Z01/Z02).
#pragma once

#include <complex>
#include <vector>

#include "common/linalg.hpp"
#include "rf/netlist.hpp"

namespace ipass::rf {

using Complex = std::complex<double>;

// S-parameters of a circuit at a single frequency.
struct SPoint {
  double freq = 0.0;
  Complex s11{0.0, 0.0};
  Complex s21{0.0, 0.0};

  // Insertion loss in dB (positive number for a lossy network).
  double il_db() const;
  // Return loss in dB (positive number for a matched network).
  double rl_db() const;
  double s21_db() const;  // 20 log10 |S21| (negative for loss)
};

// Series impedance of an element at frequency f, including the finite-Q
// loss term (L: Z = wL/Q + jwL; C: Z = 1/(wC Q) - j/(wC); R: Z = R).
Complex element_impedance(const Element& element, double freq);

// Same, with the value supplied separately (used by SweepWorkspace, whose
// perturbed values live outside any Circuit).
Complex impedance_of(ElementKind kind, double value, const QModel& q, double freq);

// Reusable solver state for repeated analyses of one circuit topology.
//
// Construction assembles a *stamp plan* once: for every element the linear
// indices of its four admittance-matrix slots.  analyze_at() then re-stamps
// and re-solves entirely in pre-allocated storage — zero heap allocation per
// point — which is what makes dense tolerance Monte-Carlo sweeps cheap.
// Element values can be perturbed per sample via set_value(); results are
// bit-identical to rebuilding a scaled Circuit and calling the free
// analyze_at(), because the assembly order and arithmetic are the same.
class SweepWorkspace {
 public:
  explicit SweepWorkspace(const Circuit& circuit);

  std::size_t element_count() const { return stamps_.size(); }
  double nominal_value(std::size_t element_index) const;
  double value(std::size_t element_index) const;
  void set_value(std::size_t element_index, double value);
  void reset_values();  // restore every element to its nominal value

  // Analyze at one frequency with the current (possibly perturbed) values.
  SPoint analyze_at(double freq);
  double insertion_loss_at(double freq);

 private:
  struct Stamp {
    ElementKind kind = ElementKind::Resistor;
    QModel q = QModel::lossless();
    // Linear indices into the admittance matrix; npos when the node is
    // ground and the slot does not exist.
    std::size_t diag1 = npos;
    std::size_t diag2 = npos;
    std::size_t off12 = npos;
    std::size_t off21 = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t n_ = 0;  // non-ground node count
  Port port1_;
  Port port2_;
  std::size_t port1_diag_ = npos;
  std::size_t port2_diag_ = npos;
  std::vector<Stamp> stamps_;
  std::vector<double> nominal_;
  std::vector<double> values_;
  CMatrix y_;
  std::vector<Complex> rhs_;
};

// Analyze the circuit at one frequency.  Both ports must be set and f > 0.
SPoint analyze_at(const Circuit& circuit, double freq);

// Analyze over a list of frequencies.
std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs);

// Frequency grids.
std::vector<double> linspace(double lo, double hi, std::size_t n);
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace ipass::rf
