#include "rf/netlist.hpp"

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace ipass::rf {

int Circuit::add_node() { return ++node_count_; }

void Circuit::check_node(int node) const {
  require(node >= 0 && node <= node_count_, "Circuit: unknown node id");
}

void Circuit::add(ElementKind kind, int node1, int node2, double value, QModel q,
                  std::string label) {
  check_node(node1);
  check_node(node2);
  require(node1 != node2, "Circuit::add: element shorted to itself");
  require(value > 0.0, "Circuit::add: element value must be positive");
  elements_.push_back(Element{kind, node1, node2, value, q, std::move(label)});
}

void Circuit::add_resistor(int n1, int n2, double ohms, std::string label) {
  add(ElementKind::Resistor, n1, n2, ohms, QModel::lossless(), std::move(label));
}

void Circuit::add_inductor(int n1, int n2, double henry, QModel q, std::string label) {
  add(ElementKind::Inductor, n1, n2, henry, q, std::move(label));
}

void Circuit::add_capacitor(int n1, int n2, double farad, QModel q, std::string label) {
  add(ElementKind::Capacitor, n1, n2, farad, q, std::move(label));
}

void Circuit::set_quality(std::size_t element_index, const QModel& q) {
  require(element_index < elements_.size(), "Circuit::set_quality: index out of range");
  elements_[element_index].q = q;
}

void Circuit::scale_element_value(std::size_t element_index, double factor) {
  require(element_index < elements_.size(),
          "Circuit::scale_element_value: index out of range");
  require(factor > 0.0, "Circuit::scale_element_value: factor must be positive");
  elements_[element_index].value *= factor;
}

void Circuit::set_element_value(std::size_t element_index, double value) {
  require(element_index < elements_.size(),
          "Circuit::set_element_value: index out of range");
  require(value > 0.0, "Circuit::set_element_value: value must be positive");
  elements_[element_index].value = value;
}

void Circuit::set_port1(int node, double z0) {
  check_node(node);
  require(node != 0, "Circuit::set_port1: port cannot sit on ground");
  require(z0 > 0.0, "Circuit::set_port1: Z0 must be positive");
  port1_ = Port{node, z0};
}

void Circuit::set_port2(int node, double z0) {
  check_node(node);
  require(node != 0, "Circuit::set_port2: port cannot sit on ground");
  require(z0 > 0.0, "Circuit::set_port2: Z0 must be positive");
  port2_ = Port{node, z0};
}

std::string Circuit::to_string() const {
  std::string out;
  out += strf("* circuit: %d nodes, %zu elements\n", node_count_, elements_.size());
  int idx = 0;
  for (const Element& e : elements_) {
    const char* kind = e.kind == ElementKind::Resistor   ? "R"
                       : e.kind == ElementKind::Inductor ? "L"
                                                         : "C";
    std::string value;
    switch (e.kind) {
      case ElementKind::Resistor:
        value = strf("%.4g Ohm", e.value);
        break;
      case ElementKind::Inductor:
        value = strf("%.4g nH", e.value * 1e9);
        break;
      case ElementKind::Capacitor:
        value = strf("%.4g pF", e.value * 1e12);
        break;
    }
    std::string q = e.q.is_lossless() ? "Q=inf" : strf("Qpk=%.3g@%.3gGHz", e.q.q_peak(), e.q.f_peak() / 1e9);
    out += strf("%s%-3d %2d %2d  %-12s %-18s %s\n", kind, ++idx, e.node1, e.node2,
                value.c_str(), q.c_str(), e.label.c_str());
  }
  if (port1_.node != 0) out += strf("P1   node %d, Z0=%.4g Ohm\n", port1_.node, port1_.z0);
  if (port2_.node != 0) out += strf("P2   node %d, Z0=%.4g Ohm\n", port2_.node, port2_.z0);
  return out;
}

}  // namespace ipass::rf
