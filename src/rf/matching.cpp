#include "rf/matching.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ipass::rf {

LSection design_l_section(double f0, double r_source, double r_load) {
  require(f0 > 0.0, "design_l_section: f0 must be positive");
  require(r_source > 0.0 && r_load > 0.0, "design_l_section: resistances must be positive");
  require(std::abs(r_source - r_load) > 1e-9 * r_source,
          "design_l_section: resistances must differ");

  LSection m;
  m.f0 = f0;
  m.r_source = r_source;
  m.r_load = r_load;
  const double r_lo = std::min(r_source, r_load);
  const double r_hi = std::max(r_source, r_load);
  m.q = std::sqrt(r_hi / r_lo - 1.0);
  const double w0 = omega(f0);
  // Series reactance on the low side, shunt susceptance on the high side.
  m.series_l = m.q * r_lo / w0;
  m.shunt_c = m.q / (r_hi * w0);
  m.shunt_at_load = r_load > r_source;
  return m;
}

Circuit realize_l_section(const LSection& match, const ComponentQuality& quality) {
  Circuit ckt;
  const int n_in = ckt.add_node();
  const int n_out = ckt.add_node();
  ckt.set_port1(n_in, match.r_source);
  ckt.set_port2(n_out, match.r_load);
  ckt.add_inductor(n_in, n_out, match.series_l, quality.inductor_q, "Lmatch");
  const int shunt_node = match.shunt_at_load ? n_out : n_in;
  ckt.add_capacitor(shunt_node, 0, match.shunt_c, quality.capacitor_q, "Cmatch");
  return ckt;
}

PiSection design_pi_section(double f0, double r_source, double r_load, double q) {
  require(f0 > 0.0, "design_pi_section: f0 must be positive");
  require(r_source > 0.0 && r_load > 0.0, "design_pi_section: resistances must be positive");
  const double r_hi = std::max(r_source, r_load);
  const double r_lo = std::min(r_source, r_load);
  require(q > std::sqrt(r_hi / r_lo - 1.0),
          "design_pi_section: Q must exceed the L-section minimum");

  // Standard design via a virtual intermediate resistance r_v < min(Rs, Rl):
  // the Q of the high side fixes r_v, both halves are back-to-back L-sections.
  const double r_v = r_hi / (1.0 + q * q);
  ensure(r_v < r_lo, "design_pi_section: virtual resistance not below both ends");
  const double q1 = std::sqrt(r_source / r_v - 1.0);
  const double q2 = std::sqrt(r_load / r_v - 1.0);
  const double w0 = omega(f0);

  PiSection m;
  m.f0 = f0;
  m.r_source = r_source;
  m.r_load = r_load;
  m.q = q;
  m.c_in = q1 / (r_source * w0);
  m.c_out = q2 / (r_load * w0);
  m.series_l = (q1 * r_v + q2 * r_v) / w0;
  return m;
}

Circuit realize_pi_section(const PiSection& match, const ComponentQuality& quality) {
  Circuit ckt;
  const int n_in = ckt.add_node();
  const int n_out = ckt.add_node();
  ckt.set_port1(n_in, match.r_source);
  ckt.set_port2(n_out, match.r_load);
  ckt.add_capacitor(n_in, 0, match.c_in, quality.capacitor_q, "Cin");
  ckt.add_inductor(n_in, n_out, match.series_l, quality.inductor_q, "Lpi");
  ckt.add_capacitor(n_out, 0, match.c_out, quality.capacitor_q, "Cout");
  return ckt;
}

}  // namespace ipass::rf
