#include "rf/mna.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/units.hpp"

namespace ipass::rf {

double SPoint::il_db() const { return -db20(std::abs(s21)); }
double SPoint::rl_db() const { return -db20(std::abs(s11)); }
double SPoint::s21_db() const { return db20(std::abs(s21)); }

Complex element_impedance(const Element& element, double freq) {
  const double w = omega(freq);
  switch (element.kind) {
    case ElementKind::Resistor:
      return Complex(element.value, 0.0);
    case ElementKind::Inductor: {
      const double x = w * element.value;
      const double r = element.q.is_lossless() ? 0.0 : x / element.q.q_at(freq);
      return Complex(r, x);
    }
    case ElementKind::Capacitor: {
      const double x = 1.0 / (w * element.value);
      const double r = element.q.is_lossless() ? 0.0 : x / element.q.q_at(freq);
      return Complex(r, -x);
    }
  }
  throw InvariantError("element_impedance: unknown element kind");
}

SPoint analyze_at(const Circuit& circuit, double freq) {
  require(freq > 0.0, "analyze_at: frequency must be positive");
  require(circuit.port1().node != 0 && circuit.port2().node != 0,
          "analyze_at: both ports must be set");
  const std::size_t n = static_cast<std::size_t>(circuit.node_count());
  require(n >= 1, "analyze_at: circuit has no nodes");

  CMatrix y(n, n);
  auto stamp = [&y](int n1, int n2, Complex adm) {
    if (n1 != 0) y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n1 - 1)) += adm;
    if (n2 != 0) y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n2 - 1)) += adm;
    if (n1 != 0 && n2 != 0) {
      y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n2 - 1)) -= adm;
      y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n1 - 1)) -= adm;
    }
  };

  for (const Element& e : circuit.elements()) {
    stamp(e.node1, e.node2, 1.0 / element_impedance(e, freq));
  }

  const Port& p1 = circuit.port1();
  const Port& p2 = circuit.port2();
  stamp(p1.node, 0, Complex(1.0 / p1.z0, 0.0));
  stamp(p2.node, 0, Complex(1.0 / p2.z0, 0.0));

  // Norton current of the 1 V source behind Z01.
  std::vector<Complex> rhs(n, Complex(0.0, 0.0));
  rhs[static_cast<std::size_t>(p1.node - 1)] = Complex(1.0 / p1.z0, 0.0);

  const std::vector<Complex> v = solve_inplace(y, std::move(rhs));

  SPoint pt;
  pt.freq = freq;
  const Complex v1 = v[static_cast<std::size_t>(p1.node - 1)];
  const Complex v2 = v[static_cast<std::size_t>(p2.node - 1)];
  pt.s11 = 2.0 * v1 - 1.0;
  pt.s21 = 2.0 * v2 * std::sqrt(p1.z0 / p2.z0);
  return pt;
}

std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs) {
  std::vector<SPoint> out;
  out.reserve(freqs.size());
  for (const double f : freqs) out.push_back(analyze_at(circuit, f));
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  require(n >= 2, "linspace: need at least two points");
  require(hi > lo, "linspace: hi must exceed lo");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  require(lo > 0.0, "logspace: lo must be positive");
  require(n >= 2, "logspace: need at least two points");
  require(hi > lo, "logspace: hi must exceed lo");
  std::vector<double> out(n);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace ipass::rf
