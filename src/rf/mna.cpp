#include "rf/mna.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/units.hpp"

namespace ipass::rf {

double SPoint::il_db() const { return -db20(std::abs(s21)); }
double SPoint::rl_db() const { return -db20(std::abs(s11)); }
double SPoint::s21_db() const { return db20(std::abs(s21)); }

Complex impedance_of(ElementKind kind, double value, const QModel& q, double freq) {
  const double w = omega(freq);
  switch (kind) {
    case ElementKind::Resistor:
      return Complex(value, 0.0);
    case ElementKind::Inductor: {
      const double x = w * value;
      const double r = q.is_lossless() ? 0.0 : x / q.q_at(freq);
      return Complex(r, x);
    }
    case ElementKind::Capacitor: {
      const double x = 1.0 / (w * value);
      const double r = q.is_lossless() ? 0.0 : x / q.q_at(freq);
      return Complex(r, -x);
    }
  }
  throw InvariantError("impedance_of: unknown element kind");
}

Complex element_impedance(const Element& element, double freq) {
  return impedance_of(element.kind, element.value, element.q, freq);
}

SPoint analyze_at(const Circuit& circuit, double freq) {
  require(freq > 0.0, "analyze_at: frequency must be positive");
  require(circuit.port1().node != 0 && circuit.port2().node != 0,
          "analyze_at: both ports must be set");
  const std::size_t n = static_cast<std::size_t>(circuit.node_count());
  require(n >= 1, "analyze_at: circuit has no nodes");

  CMatrix y(n, n);
  auto stamp = [&y](int n1, int n2, Complex adm) {
    if (n1 != 0) y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n1 - 1)) += adm;
    if (n2 != 0) y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n2 - 1)) += adm;
    if (n1 != 0 && n2 != 0) {
      y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n2 - 1)) -= adm;
      y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n1 - 1)) -= adm;
    }
  };

  for (const Element& e : circuit.elements()) {
    stamp(e.node1, e.node2, 1.0 / element_impedance(e, freq));
  }

  const Port& p1 = circuit.port1();
  const Port& p2 = circuit.port2();
  stamp(p1.node, 0, Complex(1.0 / p1.z0, 0.0));
  stamp(p2.node, 0, Complex(1.0 / p2.z0, 0.0));

  // Norton current of the 1 V source behind Z01.
  std::vector<Complex> rhs(n, Complex(0.0, 0.0));
  rhs[static_cast<std::size_t>(p1.node - 1)] = Complex(1.0 / p1.z0, 0.0);

  const std::vector<Complex> v = solve_inplace(y, std::move(rhs));

  SPoint pt;
  pt.freq = freq;
  const Complex v1 = v[static_cast<std::size_t>(p1.node - 1)];
  const Complex v2 = v[static_cast<std::size_t>(p2.node - 1)];
  pt.s11 = 2.0 * v1 - 1.0;
  pt.s21 = 2.0 * v2 * std::sqrt(p1.z0 / p2.z0);
  return pt;
}

SweepWorkspace::SweepWorkspace(const Circuit& circuit) {
  require(circuit.port1().node != 0 && circuit.port2().node != 0,
          "SweepWorkspace: both ports must be set");
  n_ = static_cast<std::size_t>(circuit.node_count());
  require(n_ >= 1, "SweepWorkspace: circuit has no nodes");
  port1_ = circuit.port1();
  port2_ = circuit.port2();

  auto diag_index = [this](int node) {
    return node == 0 ? npos
                     : (static_cast<std::size_t>(node - 1)) * n_ +
                           static_cast<std::size_t>(node - 1);
  };
  auto off_index = [this](int r, int c) {
    return (r == 0 || c == 0) ? npos
                              : (static_cast<std::size_t>(r - 1)) * n_ +
                                    static_cast<std::size_t>(c - 1);
  };

  stamps_.reserve(circuit.elements().size());
  nominal_.reserve(circuit.elements().size());
  for (const Element& e : circuit.elements()) {
    Stamp s;
    s.kind = e.kind;
    s.q = e.q;
    s.diag1 = diag_index(e.node1);
    s.diag2 = diag_index(e.node2);
    s.off12 = off_index(e.node1, e.node2);
    s.off21 = off_index(e.node2, e.node1);
    stamps_.push_back(s);
    nominal_.push_back(e.value);
  }
  values_ = nominal_;
  port1_diag_ = diag_index(port1_.node);
  port2_diag_ = diag_index(port2_.node);
  y_ = CMatrix(n_, n_);
  rhs_.resize(n_, Complex(0.0, 0.0));
}

double SweepWorkspace::nominal_value(std::size_t element_index) const {
  require(element_index < nominal_.size(), "SweepWorkspace: index out of range");
  return nominal_[element_index];
}

double SweepWorkspace::value(std::size_t element_index) const {
  require(element_index < values_.size(), "SweepWorkspace: index out of range");
  return values_[element_index];
}

void SweepWorkspace::set_value(std::size_t element_index, double value) {
  require(element_index < values_.size(), "SweepWorkspace: index out of range");
  require(value > 0.0, "SweepWorkspace::set_value: value must be positive");
  values_[element_index] = value;
}

void SweepWorkspace::reset_values() { values_ = nominal_; }

SPoint SweepWorkspace::analyze_at(double freq) {
  require(freq > 0.0, "SweepWorkspace::analyze_at: frequency must be positive");
  y_.set_zero();
  Complex* y = y_.data();
  // Stamp order and arithmetic mirror the free analyze_at() exactly, so the
  // assembled matrix (and hence the solution) is bit-identical to it.
  for (std::size_t i = 0; i < stamps_.size(); ++i) {
    const Stamp& s = stamps_[i];
    const Complex adm = 1.0 / impedance_of(s.kind, values_[i], s.q, freq);
    if (s.diag1 != npos) y[s.diag1] += adm;
    if (s.diag2 != npos) y[s.diag2] += adm;
    if (s.off12 != npos) {
      y[s.off12] -= adm;
      y[s.off21] -= adm;
    }
  }
  y[port1_diag_] += Complex(1.0 / port1_.z0, 0.0);
  y[port2_diag_] += Complex(1.0 / port2_.z0, 0.0);

  rhs_.assign(n_, Complex(0.0, 0.0));
  rhs_[static_cast<std::size_t>(port1_.node - 1)] = Complex(1.0 / port1_.z0, 0.0);
  solve_overwrite(y_, rhs_);

  SPoint pt;
  pt.freq = freq;
  const Complex v1 = rhs_[static_cast<std::size_t>(port1_.node - 1)];
  const Complex v2 = rhs_[static_cast<std::size_t>(port2_.node - 1)];
  pt.s11 = 2.0 * v1 - 1.0;
  pt.s21 = 2.0 * v2 * std::sqrt(port1_.z0 / port2_.z0);
  return pt;
}

double SweepWorkspace::insertion_loss_at(double freq) { return analyze_at(freq).il_db(); }

std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs) {
  std::vector<SPoint> out;
  out.reserve(freqs.size());
  if (freqs.empty()) return out;
  SweepWorkspace ws(circuit);  // one assembly plan + matrix for the whole sweep
  for (const double f : freqs) out.push_back(ws.analyze_at(f));
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  require(n >= 2, "linspace: need at least two points");
  require(hi > lo, "linspace: hi must exceed lo");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  require(lo > 0.0, "logspace: lo must be positive");
  require(n >= 2, "logspace: need at least two points");
  require(hi > lo, "logspace: hi must exceed lo");
  std::vector<double> out(n);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace ipass::rf
