#include "rf/mna.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/linalg_batch_kernel.hpp"
#include "common/units.hpp"

namespace ipass::rf {

double SPoint::il_db() const { return -db20(std::abs(s21)); }
double SPoint::rl_db() const { return -db20(std::abs(s11)); }
double SPoint::s21_db() const { return db20(std::abs(s21)); }

Complex impedance_of(ElementKind kind, double value, const QModel& q, double freq) {
  const double w = omega(freq);
  switch (kind) {
    case ElementKind::Resistor:
      return Complex(value, 0.0);
    case ElementKind::Inductor: {
      const double x = w * value;
      const double r = q.is_lossless() ? 0.0 : x / q.q_at(freq);
      return Complex(r, x);
    }
    case ElementKind::Capacitor: {
      const double x = 1.0 / (w * value);
      const double r = q.is_lossless() ? 0.0 : x / q.q_at(freq);
      return Complex(r, -x);
    }
  }
  throw InvariantError("impedance_of: unknown element kind");
}

Complex element_impedance(const Element& element, double freq) {
  return impedance_of(element.kind, element.value, element.q, freq);
}

SPoint analyze_at(const Circuit& circuit, double freq) {
  require(freq > 0.0, "analyze_at: frequency must be positive");
  require(circuit.port1().node != 0 && circuit.port2().node != 0,
          "analyze_at: both ports must be set");
  const std::size_t n = static_cast<std::size_t>(circuit.node_count());
  require(n >= 1, "analyze_at: circuit has no nodes");

  CMatrix y(n, n);
  auto stamp = [&y](int n1, int n2, Complex adm) {
    if (n1 != 0) y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n1 - 1)) += adm;
    if (n2 != 0) y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n2 - 1)) += adm;
    if (n1 != 0 && n2 != 0) {
      y.at(static_cast<std::size_t>(n1 - 1), static_cast<std::size_t>(n2 - 1)) -= adm;
      y.at(static_cast<std::size_t>(n2 - 1), static_cast<std::size_t>(n1 - 1)) -= adm;
    }
  };

  for (const Element& e : circuit.elements()) {
    stamp(e.node1, e.node2, 1.0 / element_impedance(e, freq));
  }

  const Port& p1 = circuit.port1();
  const Port& p2 = circuit.port2();
  stamp(p1.node, 0, Complex(1.0 / p1.z0, 0.0));
  stamp(p2.node, 0, Complex(1.0 / p2.z0, 0.0));

  // Norton current of the 1 V source behind Z01.
  std::vector<Complex> rhs(n, Complex(0.0, 0.0));
  rhs[static_cast<std::size_t>(p1.node - 1)] = Complex(1.0 / p1.z0, 0.0);

  const std::vector<Complex> v = solve_inplace(y, std::move(rhs));

  SPoint pt;
  pt.freq = freq;
  const Complex v1 = v[static_cast<std::size_t>(p1.node - 1)];
  const Complex v2 = v[static_cast<std::size_t>(p2.node - 1)];
  pt.s11 = 2.0 * v1 - 1.0;
  pt.s21 = 2.0 * v2 * std::sqrt(p1.z0 / p2.z0);
  return pt;
}

namespace detail {

StampPlan StampPlan::build(const Circuit& circuit) {
  require(circuit.port1().node != 0 && circuit.port2().node != 0,
          "SweepWorkspace: both ports must be set");
  StampPlan plan;
  plan.n = static_cast<std::size_t>(circuit.node_count());
  require(plan.n >= 1, "SweepWorkspace: circuit has no nodes");
  plan.port1 = circuit.port1();
  plan.port2 = circuit.port2();

  const std::size_t n = plan.n;
  auto diag_index = [n](int node) {
    return node == 0 ? npos
                     : (static_cast<std::size_t>(node - 1)) * n +
                           static_cast<std::size_t>(node - 1);
  };
  auto off_index = [n](int r, int c) {
    return (r == 0 || c == 0) ? npos
                              : (static_cast<std::size_t>(r - 1)) * n +
                                    static_cast<std::size_t>(c - 1);
  };

  plan.stamps.reserve(circuit.elements().size());
  plan.nominal.reserve(circuit.elements().size());
  for (const Element& e : circuit.elements()) {
    Stamp s;
    s.kind = e.kind;
    s.q = e.q;
    s.diag1 = diag_index(e.node1);
    s.diag2 = diag_index(e.node2);
    s.off12 = off_index(e.node1, e.node2);
    s.off21 = off_index(e.node2, e.node1);
    plan.stamps.push_back(s);
    plan.nominal.push_back(e.value);
  }
  plan.port1_diag = diag_index(plan.port1.node);
  plan.port2_diag = diag_index(plan.port2.node);
  plan.port1_index = static_cast<std::size_t>(plan.port1.node - 1);
  plan.port2_index = static_cast<std::size_t>(plan.port2.node - 1);
  // Hoisted factor of the S21 formula; the per-point value is identical
  // because sqrt of the same quotient is deterministic.
  plan.s21_scale = std::sqrt(plan.port1.z0 / plan.port2.z0);
  return plan;
}

}  // namespace detail

SweepWorkspace::SweepWorkspace(const Circuit& circuit) : plan_(detail::StampPlan::build(circuit)) {
  values_ = plan_.nominal;
  y_ = CMatrix(plan_.n, plan_.n);
  // The Norton current vector never changes: one nonzero slot, written here
  // once.  Solves write into x_, so there is no per-point rhs rebuild (the
  // pre-batch implementation re-zeroed the whole vector every point).
  rhs_.assign(plan_.n, Complex(0.0, 0.0));
  rhs_[plan_.port1_index] = Complex(1.0 / plan_.port1.z0, 0.0);
  x_ = rhs_;
}

double SweepWorkspace::nominal_value(std::size_t element_index) const {
  require(element_index < plan_.nominal.size(), "SweepWorkspace: index out of range");
  return plan_.nominal[element_index];
}

double SweepWorkspace::value(std::size_t element_index) const {
  require(element_index < values_.size(), "SweepWorkspace: index out of range");
  return values_[element_index];
}

void SweepWorkspace::set_value(std::size_t element_index, double value) {
  require(element_index < values_.size(), "SweepWorkspace: index out of range");
  require(value > 0.0, "SweepWorkspace::set_value: value must be positive");
  values_[element_index] = value;
}

void SweepWorkspace::reset_values() { values_ = plan_.nominal; }

SPoint SweepWorkspace::analyze_at(double freq) {
  require(freq > 0.0, "SweepWorkspace::analyze_at: frequency must be positive");
  y_.set_zero();
  Complex* y = y_.data();
  // Stamp order and arithmetic mirror the free analyze_at() exactly, so the
  // assembled matrix (and hence the solution) is bit-identical to it.
  for (std::size_t i = 0; i < plan_.stamps.size(); ++i) {
    const detail::StampPlan::Stamp& s = plan_.stamps[i];
    const Complex adm = 1.0 / impedance_of(s.kind, values_[i], s.q, freq);
    if (s.diag1 != detail::StampPlan::npos) y[s.diag1] += adm;
    if (s.diag2 != detail::StampPlan::npos) y[s.diag2] += adm;
    if (s.off12 != detail::StampPlan::npos) {
      y[s.off12] -= adm;
      y[s.off21] -= adm;
    }
  }
  y[plan_.port1_diag] += Complex(1.0 / plan_.port1.z0, 0.0);
  y[plan_.port2_diag] += Complex(1.0 / plan_.port2.z0, 0.0);

  x_ = rhs_;  // pre-sized copy of the constant Norton vector, no allocation
  solve_overwrite(y_, x_);

  SPoint pt;
  pt.freq = freq;
  const Complex v1 = x_[plan_.port1_index];
  const Complex v2 = x_[plan_.port2_index];
  pt.s11 = 2.0 * v1 - 1.0;
  pt.s21 = 2.0 * v2 * plan_.s21_scale;
  return pt;
}

double SweepWorkspace::insertion_loss_at(double freq) { return analyze_at(freq).il_db(); }

BatchSweepWorkspace::BatchSweepWorkspace(const Circuit& circuit, std::size_t lanes)
    : plan_(detail::StampPlan::build(circuit)), lanes_(lanes) {
  require(lanes >= 1 && lanes <= kMaxBatchLanes,
          "BatchSweepWorkspace: lane count out of range");
  values_.resize(plan_.nominal.size() * lanes_);
  reset_values();
  y_ = BatchCMatrix(plan_.n, lanes_);
  rhs_ = BatchCVector(plan_.n, lanes_);
  x_ = BatchCVector(plan_.n, lanes_);
  const Complex norton(1.0 / plan_.port1.z0, 0.0);
  for (std::size_t w = 0; w < lanes_; ++w) rhs_.set(plan_.port1_index, w, norton);

  // Admittance scratch: one lane-major row per element, plus two constant
  // rows for the port admittances (filled here, never overwritten).
  const std::size_t n_elements = plan_.stamps.size();
  admre_.assign((n_elements + 2) * lanes_, 0.0);
  admim_.assign((n_elements + 2) * lanes_, 0.0);
  for (std::size_t w = 0; w < lanes_; ++w) {
    admre_[(n_elements + 0) * lanes_ + w] = 1.0 / plan_.port1.z0;
    admre_[(n_elements + 1) * lanes_ + w] = 1.0 / plan_.port2.z0;
  }

  // Slot plan: per matrix slot, the signed contributions in exactly the
  // order the scalar workspace accumulates them — elements in netlist
  // order (+diag1, +diag2, -off12, -off21), then port 1, then port 2 — so
  // the per-slot sums are bit-identical to the scalar += / -= chain.
  const std::size_t n_slots = plan_.n * plan_.n;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> contribs(n_slots);
  for (std::size_t i = 0; i < n_elements; ++i) {
    const detail::StampPlan::Stamp& s = plan_.stamps[i];
    const auto src = static_cast<std::uint32_t>(i);
    if (s.diag1 != detail::StampPlan::npos) contribs[s.diag1].emplace_back(src, 1.0);
    if (s.diag2 != detail::StampPlan::npos) contribs[s.diag2].emplace_back(src, 1.0);
    if (s.off12 != detail::StampPlan::npos) {
      contribs[s.off12].emplace_back(src, -1.0);
      contribs[s.off21].emplace_back(src, -1.0);
    }
  }
  contribs[plan_.port1_diag].emplace_back(static_cast<std::uint32_t>(n_elements), 1.0);
  contribs[plan_.port2_diag].emplace_back(static_cast<std::uint32_t>(n_elements + 1), 1.0);
  slot_offsets_.assign(n_slots + 1, 0);
  for (std::size_t s = 0; s < n_slots; ++s) {
    slot_offsets_[s + 1] =
        slot_offsets_[s] + static_cast<std::uint32_t>(contribs[s].size());
  }
  slot_source_.reserve(slot_offsets_[n_slots]);
  slot_sign_.reserve(slot_offsets_[n_slots]);
  for (std::size_t s = 0; s < n_slots; ++s) {
    for (const auto& [src, sign] : contribs[s]) {
      slot_source_.push_back(src);
      slot_sign_.push_back(sign);
    }
  }
}

double BatchSweepWorkspace::nominal_value(std::size_t element_index) const {
  require(element_index < plan_.nominal.size(), "BatchSweepWorkspace: index out of range");
  return plan_.nominal[element_index];
}

double BatchSweepWorkspace::value(std::size_t lane, std::size_t element_index) const {
  require(lane < lanes_ && element_index < plan_.nominal.size(),
          "BatchSweepWorkspace: index out of range");
  return values_[element_index * lanes_ + lane];
}

void BatchSweepWorkspace::reset_values() {
  for (std::size_t e = 0; e < plan_.nominal.size(); ++e) {
    for (std::size_t w = 0; w < lanes_; ++w) values_[e * lanes_ + w] = plan_.nominal[e];
  }
}

template <typename LaneCount>
void BatchSweepWorkspace::stamp_lanes(double freq, LaneCount w_count) {
  const std::size_t W = w_count;
  // Per-lane admittances, arithmetic identical to the scalar workspace's
  // 1.0 / impedance_of(...) (recip_exact reproduces the library division
  // bit for bit).
  double* __restrict__ const admre = admre_.data();
  double* __restrict__ const admim = admim_.data();
  const double w0 = omega(freq);
  for (std::size_t i = 0; i < plan_.stamps.size(); ++i) {
    const detail::StampPlan::Stamp& s = plan_.stamps[i];
    const double* __restrict__ const vals = values_.data() + i * W;
    double* __restrict__ const ore = admre + i * W;
    double* __restrict__ const oim = admim + i * W;
    // Kind-specialized fast paths: for resistors and lossless reactances
    // the impedance is purely real / purely imaginary, so recip_exact
    // collapses to one real division per lane (see its derivation) and the
    // lane loop vectorizes.  The expressions below are recip_exact's own
    // algebra spelled out, so the bits are identical; lossy elements and
    // out-of-range values take the generic per-lane path.
    bool fast = true;
    if (s.kind == ElementKind::Resistor) {
      for (std::size_t w = 0; w < W; ++w) {
        fast = fast && vals[w] > 1e-140 && vals[w] < 1e140;
      }
      if (fast) {
        for (std::size_t w = 0; w < W; ++w) {
          ore[w] = 1.0 / vals[w];
          oim[w] = 0.0;
        }
        continue;
      }
    } else if (s.q.is_lossless() && s.kind == ElementKind::Inductor) {
      for (std::size_t w = 0; w < W; ++w) {
        const double x = w0 * vals[w];
        fast = fast && x > 1e-140 && x < 1e140;
      }
      if (fast) {
        for (std::size_t w = 0; w < W; ++w) {
          ore[w] = 0.0;  // z = (0, x), x > 0
          oim[w] = -1.0 / (w0 * vals[w]);
        }
        continue;
      }
    } else if (s.q.is_lossless() && s.kind == ElementKind::Capacitor) {
      std::array<double, kMaxBatchLanes> x;
      for (std::size_t w = 0; w < W; ++w) {
        x[w] = 1.0 / (w0 * vals[w]);
        fast = fast && x[w] > 1e-140 && x[w] < 1e140;
      }
      if (fast) {
        for (std::size_t w = 0; w < W; ++w) {
          ore[w] = -0.0;  // z = (0, -x), x > 0
          oim[w] = -1.0 / -x[w];
        }
        continue;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {
      const Complex z = impedance_of(s.kind, values_[i * W + w], s.q, freq);
      const Complex adm = ipass::detail::recip_exact(z);
      admre[i * W + w] = adm.real();
      admim[i * W + w] = adm.imag();
    }
  }
  // Assemble per slot: each slot's signed contributions are summed in the
  // scalar stamp order (adding a negated operand is IEEE subtraction, so
  // the chain is bit-identical to the scalar += / -= sequence) and stored
  // once; contribution-free slots store plain zero.
  double* __restrict__ const yre = y_.re();
  double* __restrict__ const yim = y_.im();
  const std::size_t n_slots = plan_.n * plan_.n;
  std::array<double, kMaxBatchLanes> acc_re, acc_im;
  for (std::size_t s = 0; s < n_slots; ++s) {
    const std::uint32_t b = slot_offsets_[s];
    const std::uint32_t e = slot_offsets_[s + 1];
    if (e - b == 1) {
      // Single contribution (every off-diagonal): store 0 ± adm directly.
      // The leading 0.0 + keeps the zero signs of the accumulate chain.
      const double sign = slot_sign_[b];
      const double* __restrict__ const src_re = admre + slot_source_[b] * W;
      const double* __restrict__ const src_im = admim + slot_source_[b] * W;
      for (std::size_t w = 0; w < W; ++w) {
        yre[s * W + w] = 0.0 + sign * src_re[w];
        yim[s * W + w] = 0.0 + sign * src_im[w];
      }
      continue;
    }
    for (std::size_t w = 0; w < W; ++w) {
      acc_re[w] = 0.0;
      acc_im[w] = 0.0;
    }
    for (std::uint32_t c = b; c < e; ++c) {
      const double sign = slot_sign_[c];
      const double* __restrict__ const src_re = admre + slot_source_[c] * W;
      const double* __restrict__ const src_im = admim + slot_source_[c] * W;
      for (std::size_t w = 0; w < W; ++w) {
        acc_re[w] += sign * src_re[w];
        acc_im[w] += sign * src_im[w];
      }
    }
    for (std::size_t w = 0; w < W; ++w) {
      yre[s * W + w] = acc_re[w];
      yim[s * W + w] = acc_im[w];
    }
  }
}

void BatchSweepWorkspace::stamp_and_solve(double freq, std::size_t solved_down_to) {
  require(freq > 0.0, "BatchSweepWorkspace: frequency must be positive");
  if (lanes_ == 8) {
    stamp_lanes(freq, std::integral_constant<std::size_t, 8>{});
  } else {
    stamp_lanes(freq, lanes_);
  }
  x_.copy_from(rhs_);  // pre-sized copy of the constant Norton lanes
  // Straight into the header-inline kernel: shapes are correct by
  // construction, and keeping the whole stamp -> solve chain in this TU is
  // worth a measurable slice of the tolerance sweep.
  ipass::detail::batch_solve_dispatch(plan_.n, lanes_, solved_down_to, y_.re(), y_.im(),
                                      x_.re(), x_.im());
}

void BatchSweepWorkspace::analyze_at(double freq, SPoint* out) {
  stamp_and_solve(freq, std::min(plan_.port1_index, plan_.port2_index));
  for (std::size_t w = 0; w < lanes_; ++w) {
    SPoint pt;
    pt.freq = freq;
    const Complex v1 = x_.get(plan_.port1_index, w);
    const Complex v2 = x_.get(plan_.port2_index, w);
    pt.s11 = 2.0 * v1 - 1.0;
    pt.s21 = 2.0 * v2 * plan_.s21_scale;
    out[w] = pt;
  }
}

void BatchSweepWorkspace::insertion_loss_at(double freq, double* out) {
  stamp_and_solve(freq, plan_.port2_index);
  const double* const xre = x_.re() + plan_.port2_index * lanes_;
  const double* const xim = x_.im() + plan_.port2_index * lanes_;
  for (std::size_t w = 0; w < lanes_; ++w) {
    const Complex s21 = 2.0 * Complex(xre[w], xim[w]) * plan_.s21_scale;
    out[w] = -db20(std::abs(s21));
  }
}

std::vector<SPoint> sweep(const Circuit& circuit, const std::vector<double>& freqs) {
  std::vector<SPoint> out;
  out.reserve(freqs.size());
  if (freqs.empty()) return out;
  SweepWorkspace ws(circuit);  // one assembly plan + matrix for the whole sweep
  for (const double f : freqs) out.push_back(ws.analyze_at(f));
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  require(n >= 2, "linspace: need at least two points");
  // An ordered comparison (rather than hi != lo) also rejects NaN endpoints.
  require(hi > lo || hi < lo, "linspace: lo and hi must differ (either order is fine)");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  require(lo > 0.0 && hi > 0.0, "logspace: lo and hi must both be positive");
  require(n >= 2, "logspace: need at least two points");
  require(hi > lo || hi < lo, "logspace: lo and hi must differ (either order is fine)");
  std::vector<double> out(n);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace ipass::rf
