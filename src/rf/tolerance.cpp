#include "rf/tolerance.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ipass::rf {

double ToleranceSpec::for_kind(ElementKind kind) const {
  switch (kind) {
    case ElementKind::Resistor: return resistor;
    case ElementKind::Inductor: return inductor;
    case ElementKind::Capacitor: return capacitor;
  }
  return 0.0;
}

ToleranceSpec ToleranceSpec::integrated_untrimmed() {
  // "Tolerances are about 15%" (resistors); dielectric thickness gives
  // capacitors ~10%, spiral geometry is lithographic, ~3%.
  ToleranceSpec t;
  t.resistor = 0.15;
  t.capacitor = 0.10;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::integrated_trimmed() {
  // "with laser tuning values below 1% have been achieved" -- resistors
  // and MIM capacitors are trimmable, spirals are not.
  ToleranceSpec t;
  t.resistor = 0.01;
  t.capacitor = 0.01;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::smd_standard() {
  ToleranceSpec t;
  t.resistor = 0.05;
  t.capacitor = 0.05;
  t.inductor = 0.10;
  return t;
}

namespace {

struct TolAccum {
  RunningStats stats;
  std::size_t passing = 0;
};

// Relative 3-sigma tolerance per element, resolved once up front.  A
// tolerance >= 100% could clamp a sample to a non-positive element value
// (which the value setters reject mid-run); fail fast instead.
std::vector<double> per_element_tolerance(const Circuit& nominal,
                                          const ToleranceSpec& tolerance) {
  std::vector<double> tols;
  tols.reserve(nominal.elements().size());
  for (const Element& e : nominal.elements()) {
    const double tol = tolerance.for_kind(e.kind);
    require(tol < 1.0, "analyze_tolerance: element tolerance must be below 100%");
    tols.push_back(tol);
  }
  return tols;
}

std::vector<double> nominal_values(const Circuit& nominal) {
  std::vector<double> values;
  values.reserve(nominal.elements().size());
  for (const Element& e : nominal.elements()) values.push_back(e.value);
  return values;
}

// The perturbation plan: every element with a nonzero tolerance, with its
// sigma (tol / 3) resolved up front.  Draw order is element order, exactly
// like the historical per-sample loop.
struct Perturbation {
  std::uint32_t element = 0;
  double sigma = 0.0;    // tol / 3
  double tol = 0.0;      // clamp bound
  double nominal = 0.0;
};

std::vector<Perturbation> perturbation_plan(const std::vector<double>& tols,
                                            const std::vector<double>& values) {
  std::vector<Perturbation> plan;
  plan.reserve(tols.size());
  for (std::size_t e = 0; e < tols.size(); ++e) {
    if (tols[e] <= 0.0) continue;
    plan.push_back({static_cast<std::uint32_t>(e), tols[e] / 3.0, tols[e], values[e]});
  }
  return plan;
}

// One perturbed element value from a standard-normal draw z, bit-identical
// to the per-sample path rng.normal(0.0, tol / 3.0) followed by the clamp
// (normal(mean, sigma) is mean + sigma * z, spelled out here so the
// blocked draws reproduce it exactly, signed zeros included).
inline double perturbed_value(const Perturbation& p, double z) {
  const double rel = std::clamp(0.0 + p.sigma * z, -p.tol, p.tol);
  return p.nominal * (1.0 + rel);
}

ToleranceResult finish(std::size_t samples, const TolAccum& acc) {
  ToleranceResult r;
  r.samples = samples;
  r.passing = acc.passing;
  r.parametric_yield = static_cast<double>(acc.passing) / static_cast<double>(samples);
  const double p = r.parametric_yield;
  r.ci95_half_width = 1.959963985 * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                              static_cast<double>(samples));
  r.metric_mean = acc.stats.mean();
  r.metric_stddev = acc.stats.stddev();
  r.metric_min = acc.stats.min();
  r.metric_max = acc.stats.max();
  return r;
}

// The shared chunked driver for the scalar (one sample at a time) engines.
// make_scratch() builds one reusable per-chunk instance (a Circuit copy or
// a SweepWorkspace); set_value(scratch, e, v) applies a perturbed value;
// eval(scratch) returns the monitored metric.  The chunk's Gaussian block
// is drawn up front with fill_normals — the same stream, consumed in the
// same order, as the historical per-sample draws.
template <typename MakeScratch, typename SetValue, typename Eval, typename Passes>
ToleranceResult run_tolerance(std::size_t samples, std::uint64_t seed, unsigned threads,
                              const std::vector<double>& tols,
                              const std::vector<double>& values,
                              const MakeScratch& make_scratch, const SetValue& set_value,
                              const Eval& eval, const Passes& passes) {
  const std::vector<Perturbation> pert = perturbation_plan(tols, values);
  const std::size_t n_draw = pert.size();
  const TolAccum acc = parallel_reduce<TolAccum>(
      samples, kToleranceChunk,
      [&](std::size_t chunk_index, std::size_t begin, std::size_t end) {
        // Chunk-dedicated RNG stream: the determinism contract.
        Pcg32 rng(seed, chunk_index);
        auto scratch = make_scratch();
        const std::size_t n_samples = end - begin;
        std::vector<double> z(n_samples * n_draw);
        rng.fill_normals(z.data(), z.size());
        TolAccum a;
        for (std::size_t i = 0; i < n_samples; ++i) {
          const double* zs = z.data() + i * n_draw;
          for (std::size_t j = 0; j < n_draw; ++j) {
            set_value(scratch, pert[j].element, perturbed_value(pert[j], zs[j]));
          }
          const double m = eval(scratch);
          a.stats.add(m);
          if (passes(m)) ++a.passing;
        }
        return a;
      },
      [](TolAccum& acc_, TolAccum&& part) {
        acc_.stats.merge(part.stats);
        acc_.passing += part.passing;
      },
      threads);
  return finish(samples, acc);
}

// The batched driver: same chunking, same RNG streams and same per-sample
// accumulation order as the scalar driver, but samples are applied to the
// lanes of one BatchSweepWorkspace and solved kToleranceBatchLanes at a
// time.  The trailing partial group leaves stale (valid) values in its
// unused lanes; their metrics are computed and discarded.
template <typename BatchMetric, typename Passes>
ToleranceResult run_tolerance_batched(const Circuit& nominal, std::size_t samples,
                                      std::uint64_t seed, unsigned threads,
                                      const std::vector<double>& tols,
                                      const std::vector<double>& values,
                                      const BatchMetric& batch_metric,
                                      const Passes& passes) {
  constexpr std::size_t W = kToleranceBatchLanes;
  const std::vector<Perturbation> pert = perturbation_plan(tols, values);
  const std::size_t n_draw = pert.size();
  // One prototype workspace; chunks copy it (plain vector copies) instead
  // of re-deriving the stamp and slot plans from the Circuit every chunk.
  const BatchSweepWorkspace prototype(nominal, W);
  const TolAccum acc = parallel_reduce<TolAccum>(
      samples, kToleranceChunk,
      [&](std::size_t chunk_index, std::size_t begin, std::size_t end) {
        Pcg32 rng(seed, chunk_index);
        BatchSweepWorkspace ws = prototype;
        const std::size_t n_samples = end - begin;
        // The Gaussian block lives on the stack for ordinary element
        // counts; only very large circuits fall back to the heap.
        std::array<double, kToleranceChunk * 16> z_stack;
        std::vector<double> z_heap;
        double* z = z_stack.data();
        const std::size_t n_z = n_samples * n_draw;
        if (n_z > z_stack.size()) {
          z_heap.resize(n_z);
          z = z_heap.data();
        }
        rng.fill_normals(z, n_z);
        std::array<double, W> metrics{};
        TolAccum a;
        for (std::size_t done = 0; done < n_samples;) {
          const std::size_t active = std::min(W, n_samples - done);
          for (std::size_t w = 0; w < active; ++w) {
            const double* zs = z + (done + w) * n_draw;
            for (std::size_t j = 0; j < n_draw; ++j) {
              ws.set_value(w, pert[j].element, perturbed_value(pert[j], zs[j]));
            }
          }
          batch_metric(ws, metrics.data());
          for (std::size_t w = 0; w < active; ++w) {
            const double m = metrics[w];
            a.stats.add(m);
            if (passes(m)) ++a.passing;
          }
          done += active;
        }
        return a;
      },
      [](TolAccum& acc_, TolAccum&& part) {
        acc_.stats.merge(part.stats);
        acc_.passing += part.passing;
      },
      threads);
  return finish(samples, acc);
}

}  // namespace

ToleranceResult analyze_tolerance(const Circuit& nominal, const ToleranceSpec& tolerance,
                                  const std::function<double(const Circuit&)>& metric,
                                  const std::function<bool(double)>& passes,
                                  const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance: spec predicate required");

  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  return run_tolerance(
      options.samples, options.seed, options.threads, tols, values,
      [&nominal]() { return nominal; },  // one scratch copy per chunk
      [](Circuit& scratch, std::size_t e, double v) { scratch.set_element_value(e, v); },
      [&metric](Circuit& scratch) { return metric(scratch); }, passes);
}

ToleranceResult analyze_tolerance_fast(const Circuit& nominal,
                                       const ToleranceSpec& tolerance,
                                       const WorkspaceMetric& metric,
                                       const std::function<bool(double)>& passes,
                                       const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance_fast: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance_fast: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance_fast: spec predicate required");

  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  return run_tolerance(
      options.samples, options.seed, options.threads, tols, values,
      [&nominal]() { return SweepWorkspace(nominal); },  // one plan per chunk
      [](SweepWorkspace& scratch, std::size_t e, double v) { scratch.set_value(e, v); },
      [&metric](SweepWorkspace& scratch) { return metric(scratch); }, passes);
}

ToleranceResult analyze_tolerance_batched(const Circuit& nominal,
                                          const ToleranceSpec& tolerance,
                                          const BatchWorkspaceMetric& metric,
                                          const std::function<bool(double)>& passes,
                                          const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance_batched: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance_batched: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance_batched: spec predicate required");

  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  return run_tolerance_batched(nominal, options.samples, options.seed, options.threads,
                               tols, values, metric, passes);
}

ToleranceResult bandpass_parametric_yield(const Circuit& nominal,
                                          const ToleranceSpec& tolerance, double f0,
                                          double max_il_db, double max_f0_shift_rel,
                                          const ToleranceOptions& options) {
  require(f0 > 0.0, "bandpass_parametric_yield: f0 must be positive");
  require(max_il_db > 0.0, "bandpass_parametric_yield: loss limit must be positive");
  require(options.samples >= 10, "bandpass_parametric_yield: need at least 10 samples");
  // Worst insertion loss over band center plus, when a frequency pull is
  // allowed, both detuned positions: the passband must still cover f0 when
  // the filter detunes by the allowed pull.  Evaluated on the batched
  // engine, lane order matching sample order; the per-lane max chain is the
  // same as the scalar metric's, so results are bit-identical to the
  // scalar-workspace implementation.
  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  const auto worst_case_il = [f0, max_f0_shift_rel](BatchSweepWorkspace& ws, double* out) {
    ws.insertion_loss_at(f0, out);
    if (max_f0_shift_rel > 0.0) {
      std::array<double, kToleranceBatchLanes> detuned;
      ws.insertion_loss_at(f0 * (1.0 + max_f0_shift_rel), detuned.data());
      for (std::size_t w = 0; w < ws.lanes(); ++w) out[w] = std::max(out[w], detuned[w]);
      ws.insertion_loss_at(f0 * (1.0 - max_f0_shift_rel), detuned.data());
      for (std::size_t w = 0; w < ws.lanes(); ++w) out[w] = std::max(out[w], detuned[w]);
    }
  };
  const auto passes = [max_il_db](double worst) { return worst <= max_il_db; };
  return run_tolerance_batched(nominal, options.samples, options.seed, options.threads,
                               tols, values, worst_case_il, passes);
}

}  // namespace ipass::rf
