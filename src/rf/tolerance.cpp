#include "rf/tolerance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ipass::rf {

double ToleranceSpec::for_kind(ElementKind kind) const {
  switch (kind) {
    case ElementKind::Resistor: return resistor;
    case ElementKind::Inductor: return inductor;
    case ElementKind::Capacitor: return capacitor;
  }
  return 0.0;
}

ToleranceSpec ToleranceSpec::integrated_untrimmed() {
  // "Tolerances are about 15%" (resistors); dielectric thickness gives
  // capacitors ~10%, spiral geometry is lithographic, ~3%.
  ToleranceSpec t;
  t.resistor = 0.15;
  t.capacitor = 0.10;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::integrated_trimmed() {
  // "with laser tuning values below 1% have been achieved" -- resistors
  // and MIM capacitors are trimmable, spirals are not.
  ToleranceSpec t;
  t.resistor = 0.01;
  t.capacitor = 0.01;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::smd_standard() {
  ToleranceSpec t;
  t.resistor = 0.05;
  t.capacitor = 0.05;
  t.inductor = 0.10;
  return t;
}

ToleranceResult analyze_tolerance(const Circuit& nominal, const ToleranceSpec& tolerance,
                                  const std::function<double(const Circuit&)>& metric,
                                  const std::function<bool(double)>& passes,
                                  const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance: spec predicate required");

  Pcg32 rng(options.seed);
  RunningStats stats;
  std::size_t passing = 0;

  for (std::size_t i = 0; i < options.samples; ++i) {
    // Perturb every element value: normal with sigma = tol/3, clamped to
    // the +-tol window (truncated-normal manufacturing model).
    Circuit instance = nominal;
    for (std::size_t e = 0; e < instance.elements().size(); ++e) {
      const Element& el = instance.elements()[e];
      const double tol = tolerance.for_kind(el.kind);
      if (tol <= 0.0) continue;
      const double rel = std::clamp(rng.normal(0.0, tol / 3.0), -tol, tol);
      // Re-add by rebuilding value in place: Circuit has no setter for the
      // value, so we scale through the quality-preserving mutator below.
      instance.scale_element_value(e, 1.0 + rel);
    }
    const double m = metric(instance);
    stats.add(m);
    if (passes(m)) ++passing;
  }

  ToleranceResult r;
  r.samples = options.samples;
  r.passing = passing;
  r.parametric_yield = static_cast<double>(passing) / static_cast<double>(options.samples);
  const double p = r.parametric_yield;
  r.ci95_half_width =
      1.959963985 * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                              static_cast<double>(options.samples));
  r.metric_mean = stats.mean();
  r.metric_stddev = stats.stddev();
  r.metric_min = stats.min();
  r.metric_max = stats.max();
  return r;
}

ToleranceResult bandpass_parametric_yield(const Circuit& nominal,
                                          const ToleranceSpec& tolerance, double f0,
                                          double max_il_db, double max_f0_shift_rel,
                                          const ToleranceOptions& options) {
  require(f0 > 0.0, "bandpass_parametric_yield: f0 must be positive");
  require(max_il_db > 0.0, "bandpass_parametric_yield: loss limit must be positive");
  // Metric: midband insertion loss; the frequency-pull criterion is folded
  // in by probing the shifted band edges as well.
  auto metric = [f0](const Circuit& c) { return insertion_loss_at(c, f0); };
  auto passes = [&, f0, max_il_db, max_f0_shift_rel](double il_at_f0) {
    if (il_at_f0 > max_il_db) return false;
    (void)max_f0_shift_rel;
    return true;
  };
  // For the frequency pull we need per-instance analysis, so run the full
  // generic loop with a combined metric instead.
  auto combined_metric = [f0, max_f0_shift_rel](const Circuit& c) {
    double worst = insertion_loss_at(c, f0);
    if (max_f0_shift_rel > 0.0) {
      // The passband must still cover f0 when the filter detunes by the
      // allowed pull: probe both detuned positions.
      worst = std::max(worst, insertion_loss_at(c, f0 * (1.0 + max_f0_shift_rel)));
      worst = std::max(worst, insertion_loss_at(c, f0 * (1.0 - max_f0_shift_rel)));
    }
    return worst;
  };
  auto combined_passes = [max_il_db](double worst) { return worst <= max_il_db; };
  (void)metric;
  (void)passes;
  return analyze_tolerance(nominal, tolerance, combined_metric, combined_passes, options);
}

}  // namespace ipass::rf
