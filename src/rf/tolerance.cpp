#include "rf/tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ipass::rf {

double ToleranceSpec::for_kind(ElementKind kind) const {
  switch (kind) {
    case ElementKind::Resistor: return resistor;
    case ElementKind::Inductor: return inductor;
    case ElementKind::Capacitor: return capacitor;
  }
  return 0.0;
}

ToleranceSpec ToleranceSpec::integrated_untrimmed() {
  // "Tolerances are about 15%" (resistors); dielectric thickness gives
  // capacitors ~10%, spiral geometry is lithographic, ~3%.
  ToleranceSpec t;
  t.resistor = 0.15;
  t.capacitor = 0.10;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::integrated_trimmed() {
  // "with laser tuning values below 1% have been achieved" -- resistors
  // and MIM capacitors are trimmable, spirals are not.
  ToleranceSpec t;
  t.resistor = 0.01;
  t.capacitor = 0.01;
  t.inductor = 0.03;
  return t;
}

ToleranceSpec ToleranceSpec::smd_standard() {
  ToleranceSpec t;
  t.resistor = 0.05;
  t.capacitor = 0.05;
  t.inductor = 0.10;
  return t;
}

namespace {

struct TolAccum {
  RunningStats stats;
  std::size_t passing = 0;
};

// Relative 3-sigma tolerance per element, resolved once up front.  A
// tolerance >= 100% could clamp a sample to a non-positive element value
// (which the value setters reject mid-run); fail fast instead.
std::vector<double> per_element_tolerance(const Circuit& nominal,
                                          const ToleranceSpec& tolerance) {
  std::vector<double> tols;
  tols.reserve(nominal.elements().size());
  for (const Element& e : nominal.elements()) {
    const double tol = tolerance.for_kind(e.kind);
    require(tol < 1.0, "analyze_tolerance: element tolerance must be below 100%");
    tols.push_back(tol);
  }
  return tols;
}

std::vector<double> nominal_values(const Circuit& nominal) {
  std::vector<double> values;
  values.reserve(nominal.elements().size());
  for (const Element& e : nominal.elements()) values.push_back(e.value);
  return values;
}

// Draw one manufactured instance: every element value is perturbed by a
// truncated normal (sigma = tol/3, clamped to +-tol) relative to nominal.
// Both analyze_tolerance overloads draw through here, so they consume the
// RNG stream identically.
template <typename SetValue>
void draw_instance(Pcg32& rng, const std::vector<double>& nominal,
                   const std::vector<double>& tols, const SetValue& set_value) {
  for (std::size_t e = 0; e < tols.size(); ++e) {
    const double tol = tols[e];
    if (tol <= 0.0) continue;
    const double rel = std::clamp(rng.normal(0.0, tol / 3.0), -tol, tol);
    set_value(e, nominal[e] * (1.0 + rel));
  }
}

// The shared chunked driver.  make_scratch() builds one reusable per-chunk
// instance (a Circuit copy or a SweepWorkspace); eval_sample(scratch, rng)
// perturbs it and returns the monitored metric.
template <typename MakeScratch, typename EvalSample>
ToleranceResult run_tolerance(std::size_t samples, std::uint64_t seed, unsigned threads,
                              const MakeScratch& make_scratch, const EvalSample& eval_sample,
                              const std::function<bool(double)>& passes) {
  const TolAccum acc = parallel_reduce<TolAccum>(
      samples, kToleranceChunk,
      [&](std::size_t chunk_index, std::size_t begin, std::size_t end) {
        // Chunk-dedicated RNG stream: the determinism contract.
        Pcg32 rng(seed, chunk_index);
        auto scratch = make_scratch();
        TolAccum a;
        for (std::size_t i = begin; i < end; ++i) {
          const double m = eval_sample(scratch, rng);
          a.stats.add(m);
          if (passes(m)) ++a.passing;
        }
        return a;
      },
      [](TolAccum& acc_, TolAccum&& part) {
        acc_.stats.merge(part.stats);
        acc_.passing += part.passing;
      },
      threads);

  ToleranceResult r;
  r.samples = samples;
  r.passing = acc.passing;
  r.parametric_yield = static_cast<double>(acc.passing) / static_cast<double>(samples);
  const double p = r.parametric_yield;
  r.ci95_half_width = 1.959963985 * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                              static_cast<double>(samples));
  r.metric_mean = acc.stats.mean();
  r.metric_stddev = acc.stats.stddev();
  r.metric_min = acc.stats.min();
  r.metric_max = acc.stats.max();
  return r;
}

}  // namespace

ToleranceResult analyze_tolerance(const Circuit& nominal, const ToleranceSpec& tolerance,
                                  const std::function<double(const Circuit&)>& metric,
                                  const std::function<bool(double)>& passes,
                                  const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance: spec predicate required");

  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  return run_tolerance(
      options.samples, options.seed, options.threads,
      [&nominal]() { return nominal; },  // one scratch copy per chunk
      [&](Circuit& scratch, Pcg32& rng) {
        draw_instance(rng, values, tols, [&scratch](std::size_t e, double v) {
          scratch.set_element_value(e, v);
        });
        return metric(scratch);
      },
      passes);
}

ToleranceResult analyze_tolerance_fast(const Circuit& nominal,
                                       const ToleranceSpec& tolerance,
                                       const WorkspaceMetric& metric,
                                       const std::function<bool(double)>& passes,
                                       const ToleranceOptions& options) {
  require(options.samples >= 10, "analyze_tolerance_fast: need at least 10 samples");
  require(static_cast<bool>(metric), "analyze_tolerance_fast: metric required");
  require(static_cast<bool>(passes), "analyze_tolerance_fast: spec predicate required");

  const std::vector<double> tols = per_element_tolerance(nominal, tolerance);
  const std::vector<double> values = nominal_values(nominal);
  return run_tolerance(
      options.samples, options.seed, options.threads,
      [&nominal]() { return SweepWorkspace(nominal); },  // one plan per chunk
      [&](SweepWorkspace& scratch, Pcg32& rng) {
        draw_instance(rng, values, tols, [&scratch](std::size_t e, double v) {
          scratch.set_value(e, v);
        });
        return metric(scratch);
      },
      passes);
}

ToleranceResult bandpass_parametric_yield(const Circuit& nominal,
                                          const ToleranceSpec& tolerance, double f0,
                                          double max_il_db, double max_f0_shift_rel,
                                          const ToleranceOptions& options) {
  require(f0 > 0.0, "bandpass_parametric_yield: f0 must be positive");
  require(max_il_db > 0.0, "bandpass_parametric_yield: loss limit must be positive");
  // Worst insertion loss over band center plus, when a frequency pull is
  // allowed, both detuned positions: the passband must still cover f0 when
  // the filter detunes by the allowed pull.
  const WorkspaceMetric worst_case_il = [f0, max_f0_shift_rel](SweepWorkspace& ws) {
    double worst = ws.insertion_loss_at(f0);
    if (max_f0_shift_rel > 0.0) {
      worst = std::max(worst, ws.insertion_loss_at(f0 * (1.0 + max_f0_shift_rel)));
      worst = std::max(worst, ws.insertion_loss_at(f0 * (1.0 - max_f0_shift_rel)));
    }
    return worst;
  };
  const auto passes = [max_il_db](double worst) { return worst <= max_il_db; };
  return analyze_tolerance_fast(nominal, tolerance, worst_case_il, passes, options);
}

}  // namespace ipass::rf
