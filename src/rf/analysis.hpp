// Filter figure extraction: insertion loss, ripple, rejection — the numbers
// the paper's performance assessment step consumes.
#pragma once

#include <vector>

#include "rf/mna.hpp"
#include "rf/netlist.hpp"

namespace ipass::rf {

struct BandpassMetrics {
  double f0 = 0.0;
  double bw = 0.0;
  double il_at_f0_db = 0.0;       // insertion loss at band center
  double max_il_in_band_db = 0.0; // worst-case loss over the passband
  double min_il_in_band_db = 0.0;
  double ripple_db = 0.0;         // max - min over the passband
};

// Sweep the passband [f0 - bw/2, f0 + bw/2] with n_points and extract the
// loss metrics.
BandpassMetrics measure_bandpass(const Circuit& circuit, double f0, double bw,
                                 std::size_t n_points = 101);

// Insertion loss (dB, positive) at a single frequency; used for image /
// stopband rejection checks.
double insertion_loss_at(const Circuit& circuit, double freq);

// Rejection relative to band center: IL(f_reject) - IL(f0).
double relative_rejection_db(const Circuit& circuit, double f0, double f_reject);

// Classical Cohn estimate of the midband dissipation loss of a coupled-
// resonator bandpass filter:
//     IL [dB] ~= 4.343 * (f0/bw) * sum(g_i) / Qu
// Used as an analytic cross-check of the simulated losses.
double cohn_bandpass_loss_db(double g_sum, double f0_over_bw, double unloaded_q);

}  // namespace ipass::rf
