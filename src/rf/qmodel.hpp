// Frequency-dependent quality-factor models for passive components.
//
// The paper's performance assessment hinges on exactly this effect: "the
// quality factor of SUMMIT passives is quite good in the 1-2 GHz range but
// decreases with frequency, leading to excessive insertion losses at the IF
// frequency (175 MHz)".  We model Q(f) with a symmetric-in-log-f peak
// function
//
//     Q(f) = 2 Qpeak / ((f/fpeak)^-a + (f/fpeak)^a)
//
// which rises ~f^a below the peak (series metal loss dominated), peaks at
// fpeak and falls beyond it (substrate loss / self-resonance dominated).
// a = 0 degenerates to a constant Q.
#pragma once

#include <cmath>

#include "common/error.hpp"

namespace ipass::rf {

class QModel {
 public:
  // Lossless component (infinite Q).
  static QModel lossless() { return QModel(); }

  // Frequency-independent Q.
  static QModel constant(double q) {
    require(q > 0.0, "QModel::constant: Q must be positive");
    QModel m;
    m.q_peak_ = q;
    m.f_peak_ = 1e9;
    m.slope_ = 0.0;
    return m;
  }

  // Peaked Q(f): maximum q_peak at f_peak, log-symmetric roll-off with
  // exponent `slope` on both sides.
  static QModel peaked(double q_peak, double f_peak, double slope) {
    require(q_peak > 0.0, "QModel::peaked: q_peak must be positive");
    require(f_peak > 0.0, "QModel::peaked: f_peak must be positive");
    require(slope >= 0.0, "QModel::peaked: slope must be non-negative");
    QModel m;
    m.q_peak_ = q_peak;
    m.f_peak_ = f_peak;
    m.slope_ = slope;
    return m;
  }

  bool is_lossless() const { return q_peak_ <= 0.0; }

  // Quality factor at frequency f (Hz).  Precondition: f > 0.
  double q_at(double f) const {
    require(f > 0.0, "QModel::q_at: frequency must be positive");
    if (is_lossless()) return 0.0;  // callers must check is_lossless() first
    if (slope_ == 0.0) return q_peak_;
    const double x = f / f_peak_;
    return 2.0 * q_peak_ / (std::pow(x, -slope_) + std::pow(x, slope_));
  }

  double q_peak() const { return q_peak_; }
  double f_peak() const { return f_peak_; }
  double slope() const { return slope_; }

 private:
  QModel() = default;
  double q_peak_ = 0.0;  // <= 0 encodes lossless
  double f_peak_ = 1e9;
  double slope_ = 0.0;
};

}  // namespace ipass::rf
