// Linear RLC netlist with two analysis ports.
//
// Node 0 is ground.  Further nodes are created with add_node().  Elements
// carry an optional QModel so the same topology can be analyzed as built
// from lossless, SMD-grade or integrated-grade passives.
#pragma once

#include <string>
#include <vector>

#include "rf/qmodel.hpp"

namespace ipass::rf {

enum class ElementKind { Resistor, Inductor, Capacitor };

struct Element {
  ElementKind kind = ElementKind::Resistor;
  int node1 = 0;
  int node2 = 0;
  double value = 0.0;  // Ohm, Henry or Farad
  QModel q = QModel::lossless();
  std::string label;
};

struct Port {
  int node = 0;        // 0 means "port not set"
  double z0 = 50.0;    // reference impedance [Ohm]
};

class Circuit {
 public:
  // Create a new circuit containing only the ground node.
  Circuit() = default;

  // Returns the id of a freshly created node (ids are 1-based).
  int add_node();

  // Number of non-ground nodes.
  int node_count() const { return node_count_; }

  void add(ElementKind kind, int node1, int node2, double value,
           QModel q = QModel::lossless(), std::string label = {});

  void add_resistor(int n1, int n2, double ohms, std::string label = {});
  void add_inductor(int n1, int n2, double henry, QModel q = QModel::lossless(),
                    std::string label = {});
  void add_capacitor(int n1, int n2, double farad, QModel q = QModel::lossless(),
                     std::string label = {});

  void set_port1(int node, double z0);
  void set_port2(int node, double z0);

  const Port& port1() const { return port1_; }
  const Port& port2() const { return port2_; }
  const std::vector<Element>& elements() const { return elements_; }

  // Re-assign the quality model of one element (used to give every
  // synthesized inductor the Q of its own geometry).
  void set_quality(std::size_t element_index, const QModel& q);

  // Multiply one element's value by `factor` (> 0); used by the tolerance
  // Monte-Carlo to perturb manufactured instances.
  void scale_element_value(std::size_t element_index, double factor);

  // Overwrite one element's value (> 0); used to re-perturb a scratch
  // instance without accumulating round-off from repeated scaling.
  void set_element_value(std::size_t element_index, double value);

  // Human-readable netlist dump (used by the Fig-2 bench and examples).
  std::string to_string() const;

 private:
  void check_node(int node) const;

  int node_count_ = 0;
  std::vector<Element> elements_;
  Port port1_;
  Port port2_;
};

}  // namespace ipass::rf
