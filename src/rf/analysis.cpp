#include "rf/analysis.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ipass::rf {

BandpassMetrics measure_bandpass(const Circuit& circuit, double f0, double bw,
                                 std::size_t n_points) {
  require(f0 > 0.0 && bw > 0.0 && bw < 2.0 * f0, "measure_bandpass: invalid band");
  require(n_points >= 3, "measure_bandpass: need at least 3 points");

  BandpassMetrics m;
  m.f0 = f0;
  m.bw = bw;
  m.il_at_f0_db = insertion_loss_at(circuit, f0);

  const std::vector<double> freqs = linspace(f0 - bw / 2.0, f0 + bw / 2.0, n_points);
  double lo = 1e300;
  double hi = -1e300;
  for (const double f : freqs) {
    const double il = insertion_loss_at(circuit, f);
    lo = std::min(lo, il);
    hi = std::max(hi, il);
  }
  m.max_il_in_band_db = hi;
  m.min_il_in_band_db = lo;
  m.ripple_db = hi - lo;
  return m;
}

double insertion_loss_at(const Circuit& circuit, double freq) {
  return analyze_at(circuit, freq).il_db();
}

double relative_rejection_db(const Circuit& circuit, double f0, double f_reject) {
  return insertion_loss_at(circuit, f_reject) - insertion_loss_at(circuit, f0);
}

double cohn_bandpass_loss_db(double g_sum, double f0_over_bw, double unloaded_q) {
  require(g_sum > 0.0, "cohn_bandpass_loss_db: g_sum must be positive");
  require(f0_over_bw > 0.0, "cohn_bandpass_loss_db: f0/bw must be positive");
  require(unloaded_q > 0.0, "cohn_bandpass_loss_db: Qu must be positive");
  return 4.343 * f0_over_bw * g_sum / unloaded_q;
}

}  // namespace ipass::rf
