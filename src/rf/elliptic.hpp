// Jacobi elliptic functions and the analytic machinery of elliptic
// (Cauer) filter approximation.
//
// References: Abramowitz & Stegun ch. 16/17 (AGM evaluation of sn/cn/dn),
// Orfanidis, "Lecture Notes on Elliptic Filter Design" (degree equation and
// the closed-form zeros of the elliptic rational function).
#pragma once

#include <complex>
#include <vector>

namespace ipass::rf {

// Complete elliptic integral of the first kind K(k), 0 <= k < 1,
// via the arithmetic-geometric mean.
double ellip_k(double k);

// Jacobi elliptic functions for real argument u and modulus k in [0, 1).
struct JacobiSncndn {
  double sn = 0.0;
  double cn = 1.0;
  double dn = 1.0;
};
JacobiSncndn jacobi_sncndn(double u, double k);

double jacobi_sn(double u, double k);
double jacobi_cd(double u, double k);  // cn/dn

// Degree equation: for filter order n and selectivity modulus k = wp/ws,
// returns k1 = eps_p / eps_s, the ripple-ratio modulus.
double elliptic_degree_modulus(int n, double k);

// Analytic description of the order-n elliptic rational function R_n for
// modulus k: zeros z_i = cd((2i-1)K/n, k), poles 1/(k z_i), plus a zero at
// the origin when n is odd.
struct EllipticRational {
  int order = 0;
  double k = 0.0;
  std::vector<double> zeros;   // positive representatives, size floor(n/2)
  std::vector<double> poles;   // 1/(k z_i), same size
  double r0 = 1.0;             // normalization so that R_n(1) = 1

  // Evaluate R_n at a real frequency (for tests / plots).
  double operator()(double w) const;
};
EllipticRational elliptic_rational(int n, double k);

// Full transfer-function description of a normalized elliptic lowpass:
// |S21(jw)|^2 = 1 / (1 + eps_p^2 R_n(w)^2), passband edge at w = 1.
struct EllipticApproximation {
  int order = 0;
  double eps_p = 0.0;          // passband ripple parameter
  double ripple_db = 0.0;
  double selectivity = 0.0;    // ws/wp > 1
  double stopband_db = 0.0;    // attenuation achieved at ws
  EllipticRational rational;
  std::vector<std::complex<double>> poles;          // Hurwitz poles of S21
  std::vector<double> transmission_zeros;           // positive w of the jw-axis zero pairs
  double gain = 1.0;                                // S21(0) = 1 for odd order

  // |S21| at real frequency w, from poles/zeros (analytic reference).
  double s21_magnitude(double w) const;
  double attenuation_db(double w) const;
};

// Build the approximation for odd order n >= 3, passband ripple in dB and
// selectivity ws/wp > 1.  (Even orders are not needed by the paper's
// filters and are rejected: their ladders require transformer end
// sections.)
EllipticApproximation elliptic_approximation(int n, double ripple_db, double selectivity);

}  // namespace ipass::rf
