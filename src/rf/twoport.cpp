#include "rf/twoport.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ipass::rf {

Abcd Abcd::identity() { return Abcd{}; }

Abcd Abcd::series(Complex z) {
  Abcd m;
  m.b = z;
  return m;
}

Abcd Abcd::shunt(Complex y) {
  Abcd m;
  m.c = y;
  return m;
}

Abcd Abcd::transformer(double n) {
  require(n > 0.0, "Abcd::transformer: turns ratio must be positive");
  Abcd m;
  m.a = Complex(n, 0.0);
  m.d = Complex(1.0 / n, 0.0);
  return m;
}

Abcd Abcd::cascade(const Abcd& next) const {
  Abcd m;
  m.a = a * next.a + b * next.c;
  m.b = a * next.b + b * next.d;
  m.c = c * next.a + d * next.c;
  m.d = c * next.b + d * next.d;
  return m;
}

Complex Abcd::determinant() const { return a * d - b * c; }

Abcd::S Abcd::to_s(double z01, double z02) const {
  require(z01 > 0.0 && z02 > 0.0, "Abcd::to_s: reference impedances must be positive");
  const double r1 = std::sqrt(z01);
  const double r2 = std::sqrt(z02);
  const Complex denom = a * z02 + b + c * z01 * z02 + d * z01;
  S s;
  s.s11 = (a * z02 + b - c * z01 * z02 - d * z01) / denom;
  s.s21 = 2.0 * r1 * r2 / denom;
  s.s12 = 2.0 * determinant() * r1 * r2 / denom;
  s.s22 = (-a * z02 + b - c * z01 * z02 + d * z01) / denom;
  return s;
}

}  // namespace ipass::rf
