#include "rf/transform.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "common/units.hpp"

namespace ipass::rf {

Circuit realize_lowpass(const LadderPrototype& proto, double f_cut, double z0,
                        const ComponentQuality& quality) {
  require(f_cut > 0.0, "realize_lowpass: cutoff must be positive");
  require(z0 > 0.0, "realize_lowpass: z0 must be positive");
  const double wc = omega(f_cut);

  Circuit ckt;
  int current = ckt.add_node();
  ckt.set_port1(current, z0 * proto.source_resistance);

  int index = 0;
  for (const LadderBranch& br : proto.branches) {
    ++index;
    switch (br.topo) {
      case LadderBranch::Topology::ShuntC:
        ckt.add_capacitor(current, 0, br.c / (z0 * wc), quality.capacitor_q,
                          strf("C%d(shunt)", index));
        break;
      case LadderBranch::Topology::SeriesL: {
        const int next = ckt.add_node();
        ckt.add_inductor(current, next, br.l * z0 / wc, quality.inductor_q,
                         strf("L%d(series)", index));
        current = next;
        break;
      }
      case LadderBranch::Topology::SeriesTrap: {
        const int next = ckt.add_node();
        ckt.add_inductor(current, next, br.l * z0 / wc, quality.inductor_q,
                         strf("L%d(trap)", index));
        ckt.add_capacitor(current, next, br.c / (z0 * wc), quality.capacitor_q,
                          strf("C%d(trap)", index));
        current = next;
        break;
      }
    }
  }
  ckt.set_port2(current, z0 * proto.load_resistance);
  return ckt;
}

Circuit realize_bandpass(const LadderPrototype& proto, double f0, double bw, double z0,
                         const ComponentQuality& quality) {
  require(f0 > 0.0, "realize_bandpass: center frequency must be positive");
  require(bw > 0.0 && bw < 2.0 * f0, "realize_bandpass: bandwidth out of range");
  require(z0 > 0.0, "realize_bandpass: z0 must be positive");
  const double w0 = omega(f0);
  const double delta = bw / f0;  // fractional bandwidth

  Circuit ckt;
  int current = ckt.add_node();
  ckt.set_port1(current, z0 * proto.source_resistance);

  // Per-element mappings of the transform s -> (s/w0 + w0/s)/delta:
  //   prototype L  ->  series L' = L z0/(delta w0), C' = delta/(L z0 w0)
  //   prototype C  ->  shunt  C' = C/(delta z0 w0), L' = delta z0/(C w0)
  int index = 0;
  for (const LadderBranch& br : proto.branches) {
    ++index;
    switch (br.topo) {
      case LadderBranch::Topology::ShuntC: {
        ckt.add_capacitor(current, 0, br.c / (delta * z0 * w0), quality.capacitor_q,
                          strf("C%d(res)", index));
        ckt.add_inductor(current, 0, delta * z0 / (br.c * w0), quality.inductor_q,
                         strf("L%d(res)", index));
        break;
      }
      case LadderBranch::Topology::SeriesL: {
        const int mid = ckt.add_node();
        const int next = ckt.add_node();
        ckt.add_inductor(current, mid, br.l * z0 / (delta * w0), quality.inductor_q,
                         strf("L%d(res)", index));
        ckt.add_capacitor(mid, next, delta / (br.l * z0 * w0), quality.capacitor_q,
                          strf("C%d(res)", index));
        current = next;
        break;
      }
      case LadderBranch::Topology::SeriesTrap: {
        // The prototype branch is L||C in the series path.  Each element
        // transforms independently: the L becomes a series L-C leg, the C a
        // parallel L-C pair, all connected between `current` and `next`.
        const int next = ckt.add_node();
        const int mid = ckt.add_node();
        ckt.add_inductor(current, mid, br.l * z0 / (delta * w0), quality.inductor_q,
                         strf("L%da(trap)", index));
        ckt.add_capacitor(mid, next, delta / (br.l * z0 * w0), quality.capacitor_q,
                          strf("C%da(trap)", index));
        ckt.add_capacitor(current, next, br.c / (delta * z0 * w0), quality.capacitor_q,
                          strf("C%db(trap)", index));
        ckt.add_inductor(current, next, delta * z0 / (br.c * w0), quality.inductor_q,
                         strf("L%db(trap)", index));
        current = next;
        break;
      }
    }
  }
  ckt.set_port2(current, z0 * proto.load_resistance);
  return ckt;
}

Circuit realize_highpass(const LadderPrototype& proto, double f_cut, double z0,
                         const ComponentQuality& quality) {
  require(f_cut > 0.0, "realize_highpass: cutoff must be positive");
  require(z0 > 0.0, "realize_highpass: z0 must be positive");
  const double wc = omega(f_cut);

  Circuit ckt;
  int current = ckt.add_node();
  ckt.set_port1(current, z0 * proto.source_resistance);

  // s -> wc/s: prototype C (shunt) -> shunt L = z0/(g wc);
  //            prototype L (series) -> series C = 1/(g z0 wc);
  //            series trap (L||C) -> series path (C' in series with L'):
  //            the parallel LC maps to a series resonator C' = 1/(l z0 wc),
  //            L' = z0/(c wc) connected in series.
  int index = 0;
  for (const LadderBranch& br : proto.branches) {
    ++index;
    switch (br.topo) {
      case LadderBranch::Topology::ShuntC:
        ckt.add_inductor(current, 0, z0 / (br.c * wc), quality.inductor_q,
                         strf("L%d(shunt)", index));
        break;
      case LadderBranch::Topology::SeriesL: {
        const int next = ckt.add_node();
        ckt.add_capacitor(current, next, 1.0 / (br.l * z0 * wc), quality.capacitor_q,
                          strf("C%d(series)", index));
        current = next;
        break;
      }
      case LadderBranch::Topology::SeriesTrap: {
        // Each element of the parallel L-C maps individually (L -> C,
        // C -> L); the branch stays a parallel trap, now resonant at
        // wc / w_z of the prototype zero.
        const int next = ckt.add_node();
        ckt.add_capacitor(current, next, 1.0 / (br.l * z0 * wc), quality.capacitor_q,
                          strf("C%d(trap)", index));
        ckt.add_inductor(current, next, z0 / (br.c * wc), quality.inductor_q,
                         strf("L%d(trap)", index));
        current = next;
        break;
      }
    }
  }
  ckt.set_port2(current, z0 * proto.load_resistance);
  return ckt;
}

Circuit realize_bandstop(const LadderPrototype& proto, double f0, double bw, double z0,
                         const ComponentQuality& quality) {
  require(f0 > 0.0, "realize_bandstop: center frequency must be positive");
  require(bw > 0.0 && bw < 2.0 * f0, "realize_bandstop: bandwidth out of range");
  require(z0 > 0.0, "realize_bandstop: z0 must be positive");
  const double w0 = omega(f0);
  const double delta = bw / f0;

  Circuit ckt;
  int current = ckt.add_node();
  ckt.set_port1(current, z0 * proto.source_resistance);

  // Standard LP->BS mappings (Pozar table 8.6):
  //   series L (g) -> parallel L-C in the series path:
  //       L' = g z0 delta / w0, C' = 1/(g z0 delta w0)
  //   shunt C (g)  -> series L-C to ground:
  //       L' = z0 / (g delta w0), C' = g delta / (z0 w0)
  int index = 0;
  for (const LadderBranch& br : proto.branches) {
    ++index;
    switch (br.topo) {
      case LadderBranch::Topology::ShuntC: {
        const int mid = ckt.add_node();
        ckt.add_inductor(current, mid, z0 / (br.c * delta * w0), quality.inductor_q,
                         strf("L%d(notch)", index));
        ckt.add_capacitor(mid, 0, br.c * delta / (z0 * w0), quality.capacitor_q,
                          strf("C%d(notch)", index));
        break;
      }
      case LadderBranch::Topology::SeriesL: {
        const int next = ckt.add_node();
        ckt.add_inductor(current, next, br.l * z0 * delta / w0, quality.inductor_q,
                         strf("L%d(trap)", index));
        ckt.add_capacitor(current, next, 1.0 / (br.l * z0 * delta * w0),
                          quality.capacitor_q, strf("C%d(trap)", index));
        current = next;
        break;
      }
      case LadderBranch::Topology::SeriesTrap:
        throw PreconditionError("realize_bandstop: all-pole prototypes only");
    }
  }
  ckt.set_port2(current, z0 * proto.load_resistance);
  return ckt;
}

ElementCount count_elements(const Circuit& circuit) {
  ElementCount n;
  for (const Element& e : circuit.elements()) {
    switch (e.kind) {
      case ElementKind::Inductor: ++n.inductors; break;
      case ElementKind::Capacitor: ++n.capacitors; break;
      case ElementKind::Resistor: ++n.resistors; break;
    }
  }
  return n;
}

}  // namespace ipass::rf
