// Matching-network design (the paper's "50 Ohm matching networks for the
// LNA and the mixer on the RF chip").
#pragma once

#include "rf/netlist.hpp"
#include "rf/qmodel.hpp"
#include "rf/transform.hpp"

namespace ipass::rf {

// Lowpass L-section matching r_source to r_load at f0.
struct LSection {
  double f0 = 0.0;
  double r_source = 0.0;
  double r_load = 0.0;
  double q = 0.0;          // network Q = sqrt(max/min - 1)
  double series_l = 0.0;   // Henry (in the signal path, low-resistance side)
  double shunt_c = 0.0;    // Farad (across the high-resistance side)
  bool shunt_at_load = false;  // true when r_load > r_source
};

// Design the L-section.  Preconditions: f0 > 0, resistances positive and
// distinct (equal resistances need no matching network and are rejected).
LSection design_l_section(double f0, double r_source, double r_load);

// Realize the section as an analyzable circuit with ports at both ends.
Circuit realize_l_section(const LSection& match,
                          const ComponentQuality& quality = ComponentQuality::lossless());

// Pi-section with a chosen loaded Q (> Q of the plain L-section); gives the
// designer control over bandwidth.  Realized as shunt C - series L - shunt C.
struct PiSection {
  double f0 = 0.0;
  double r_source = 0.0;
  double r_load = 0.0;
  double q = 0.0;
  double c_in = 0.0;
  double series_l = 0.0;
  double c_out = 0.0;
};
PiSection design_pi_section(double f0, double r_source, double r_load, double q);
Circuit realize_pi_section(const PiSection& match,
                           const ComponentQuality& quality = ComponentQuality::lossless());

}  // namespace ipass::rf
