#include "rf/prototype.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "common/units.hpp"

namespace ipass::rf {

const char* family_name(FilterFamily family) {
  switch (family) {
    case FilterFamily::Butterworth: return "Butterworth";
    case FilterFamily::Chebyshev: return "Chebyshev";
    case FilterFamily::Elliptic: return "Elliptic (Cauer)";
  }
  return "?";
}

double LadderPrototype::g_sum() const {
  double sum = 0.0;
  for (const LadderBranch& b : branches) sum += b.l + b.c;
  return sum;
}

std::string LadderPrototype::to_string() const {
  std::string out = strf("%s prototype, order %d", family_name(family), order);
  if (family != FilterFamily::Butterworth) out += strf(", ripple %.3g dB", ripple_db);
  if (family == FilterFamily::Elliptic) {
    out += strf(", stopband %.4g dB at ws/wp=%.4g", stopband_db, selectivity);
  }
  out += strf("\n  source R = %.6g, load R = %.6g\n", source_resistance, load_resistance);
  int i = 0;
  for (const LadderBranch& b : branches) {
    switch (b.topo) {
      case LadderBranch::Topology::SeriesL:
        out += strf("  [%d] series L = %.6g\n", ++i, b.l);
        break;
      case LadderBranch::Topology::ShuntC:
        out += strf("  [%d] shunt  C = %.6g\n", ++i, b.c);
        break;
      case LadderBranch::Topology::SeriesTrap:
        out += strf("  [%d] series trap L = %.6g, C = %.6g (wz = %.6g)\n", ++i, b.l, b.c,
                    1.0 / std::sqrt(b.l * b.c));
        break;
    }
  }
  return out;
}

std::vector<double> butterworth_g_values(int n) {
  require(n >= 1, "butterworth: order must be >= 1");
  std::vector<double> g(static_cast<std::size_t>(n) + 1);
  for (int k = 1; k <= n; ++k) {
    g[static_cast<std::size_t>(k - 1)] =
        2.0 * std::sin((2.0 * k - 1.0) * kPi / (2.0 * n));
  }
  g[static_cast<std::size_t>(n)] = 1.0;  // load
  return g;
}

std::vector<double> chebyshev_g_values(int n, double ripple_db) {
  require(n >= 1, "chebyshev: order must be >= 1");
  require(ripple_db > 0.0, "chebyshev: ripple must be positive");
  const double beta = std::log(1.0 / std::tanh(ripple_db / 17.37));
  const double gamma = std::sinh(beta / (2.0 * n));

  std::vector<double> a(static_cast<std::size_t>(n) + 1);
  std::vector<double> b(static_cast<std::size_t>(n) + 1);
  for (int k = 1; k <= n; ++k) {
    a[static_cast<std::size_t>(k)] = std::sin((2.0 * k - 1.0) * kPi / (2.0 * n));
    const double s = std::sin(k * kPi / n);
    b[static_cast<std::size_t>(k)] = gamma * gamma + s * s;
  }

  std::vector<double> g(static_cast<std::size_t>(n) + 1);
  g[0] = 2.0 * a[1] / gamma;
  for (int k = 2; k <= n; ++k) {
    g[static_cast<std::size_t>(k - 1)] =
        4.0 * a[static_cast<std::size_t>(k - 1)] * a[static_cast<std::size_t>(k)] /
        (b[static_cast<std::size_t>(k - 1)] * g[static_cast<std::size_t>(k - 2)]);
  }
  const double load =
      (n % 2 == 1) ? 1.0 : 1.0 / std::pow(std::tanh(beta / 4.0), 2.0);
  g[static_cast<std::size_t>(n)] = load;
  return g;
}

namespace {

LadderPrototype from_g_values(FilterFamily family, int n, double ripple_db,
                              const std::vector<double>& g) {
  LadderPrototype p;
  p.family = family;
  p.order = n;
  p.ripple_db = ripple_db;
  p.source_resistance = 1.0;
  // Pi form below starts with a shunt capacitor, so for even n the last
  // element is a series inductor and g_{n+1} is the load CONDUCTANCE
  // (Pozar, Microwave Engineering, ch. 8); for odd n it is the load
  // resistance (and equals 1 anyway).
  const double g_load = g[static_cast<std::size_t>(n)];
  p.load_resistance = (n % 2 == 0) ? 1.0 / g_load : g_load;
  // Pi form: g1 is a shunt capacitor, g2 a series inductor, alternating.
  for (int k = 1; k <= n; ++k) {
    LadderBranch br;
    if (k % 2 == 1) {
      br.topo = LadderBranch::Topology::ShuntC;
      br.c = g[static_cast<std::size_t>(k - 1)];
    } else {
      br.topo = LadderBranch::Topology::SeriesL;
      br.l = g[static_cast<std::size_t>(k - 1)];
    }
    p.branches.push_back(br);
  }
  return p;
}

}  // namespace

LadderPrototype butterworth(int n) {
  return from_g_values(FilterFamily::Butterworth, n, 0.0, butterworth_g_values(n));
}

LadderPrototype chebyshev(int n, double ripple_db) {
  return from_g_values(FilterFamily::Chebyshev, n, ripple_db,
                       chebyshev_g_values(n, ripple_db));
}

}  // namespace ipass::rf
