// Capacitively coupled shunt-resonator bandpass filters (Matthaei/Pozar
// J-inverter design).
//
// The classical LP->BP ladder transform forces impractically small shunt
// inductors at VHF (a 50 Ohm, 12% band at 175 MHz wants ~4 nH next to a
// 280 nH series coil).  Production filters — including lumped MCM filters
// of the SUMMIT era — instead use identical parallel L-C resonators coupled
// by series capacitors, with the resonator inductance a free design choice.
// This module provides that synthesis as an extension beyond the paper's
// ladder realization; bench_ablation_topology compares the two.
#pragma once

#include "rf/netlist.hpp"
#include "rf/prototype.hpp"
#include "rf/transform.hpp"

namespace ipass::rf {

struct CoupledResonatorDesign {
  double f0_hz = 0.0;
  double bw_hz = 0.0;
  double z0 = 50.0;
  double resonator_l = 0.0;        // the chosen inductance, all resonators
  double resonator_c = 0.0;        // 1/(w0^2 L) before coupling absorption
  std::vector<double> coupling_c;  // C01 .. Cn,n+1 (n+1 values, end-corrected)
  std::vector<double> shunt_c;     // final resonator capacitors (n values)
  int order = 0;
};

// Design from an all-pole lowpass prototype (Butterworth/Chebyshev).
// Preconditions: proto has only ShuntC/SeriesL branches, 0 < bw << f0,
// resonator_l chosen so the resonator C exceeds the absorbed couplings
// (throws NumericalError otherwise — pick a larger L).
CoupledResonatorDesign design_coupled_resonator_bandpass(
    const LadderPrototype& proto, double f0, double bw, double z0,
    double resonator_l);

// Realize as an analyzable circuit; inductor/capacitor Q as given.
Circuit realize_coupled_resonator(const CoupledResonatorDesign& design,
                                  const ComponentQuality& quality =
                                      ComponentQuality::lossless());

}  // namespace ipass::rf
