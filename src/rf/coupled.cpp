#include "rf/coupled.hpp"

#include "rf/mna.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "common/units.hpp"

namespace ipass::rf {

CoupledResonatorDesign design_coupled_resonator_bandpass(
    const LadderPrototype& proto, double f0, double bw, double z0,
    double resonator_l) {
  require(f0 > 0.0 && bw > 0.0 && bw < 0.5 * f0,
          "coupled design: need a narrowband spec (bw < f0/2)");
  require(z0 > 0.0, "coupled design: z0 must be positive");
  require(resonator_l > 0.0, "coupled design: resonator inductance must be positive");
  require(proto.order >= 2, "coupled design: order must be >= 2");

  // Collect the prototype g-values in ladder order (g1..gn) plus the load.
  std::vector<double> g;
  g.push_back(1.0);  // g0 (source)
  for (const LadderBranch& br : proto.branches) {
    switch (br.topo) {
      case LadderBranch::Topology::ShuntC:
        g.push_back(br.c);
        break;
      case LadderBranch::Topology::SeriesL:
        g.push_back(br.l);
        break;
      case LadderBranch::Topology::SeriesTrap:
        throw PreconditionError(
            "coupled design: only all-pole prototypes (no elliptic traps)");
    }
  }
  // Load conductance in prototype units: for the pi form, odd n terminates
  // in g_{n+1} = load R, even n in load conductance; either way the design
  // equations below want g_{n+1} as the table value.
  const int n = proto.order;
  const double g_load =
      (n % 2 == 0) ? 1.0 / proto.load_resistance : proto.load_resistance;
  g.push_back(g_load);

  const double w0 = omega(f0);
  const double delta = bw / f0;
  const double c_res = 1.0 / (w0 * w0 * resonator_l);
  const double b_slope = w0 * c_res;  // susceptance slope of each resonator
  const double ga = 1.0 / z0;

  CoupledResonatorDesign d;
  d.f0_hz = f0;
  d.bw_hz = bw;
  d.z0 = z0;
  d.order = n;
  d.resonator_l = resonator_l;
  d.resonator_c = c_res;

  // J-inverter values (Pozar 8.132/Matthaei 8.09): end and internal.
  std::vector<double> j(static_cast<std::size_t>(n) + 1);
  j[0] = std::sqrt(ga * b_slope * delta / (g[0] * g[1]));
  for (int k = 1; k < n; ++k) {
    j[static_cast<std::size_t>(k)] =
        delta * b_slope /
        std::sqrt(g[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k + 1)]);
  }
  j[static_cast<std::size_t>(n)] =
      std::sqrt(ga * b_slope * delta /
                (g[static_cast<std::size_t>(n)] * g[static_cast<std::size_t>(n + 1)]));

  // Series coupling capacitors; the end couplings see the terminations and
  // need the exact series-C inverter correction.
  d.coupling_c.resize(static_cast<std::size_t>(n) + 1);
  const double j0z = j[0] * z0;
  require(j0z < 1.0, "coupled design: end inverter unrealizable (J01 Z0 >= 1)");
  d.coupling_c[0] = j[0] / (w0 * std::sqrt(1.0 - j0z * j0z));
  for (int k = 1; k < n; ++k) {
    d.coupling_c[static_cast<std::size_t>(k)] = j[static_cast<std::size_t>(k)] / w0;
  }
  const double jnz = j[static_cast<std::size_t>(n)] * z0;
  require(jnz < 1.0, "coupled design: end inverter unrealizable (Jn Z0 >= 1)");
  d.coupling_c[static_cast<std::size_t>(n)] =
      j[static_cast<std::size_t>(n)] / (w0 * std::sqrt(1.0 - jnz * jnz));

  // Absorb the couplings into the resonator capacitors.  The effective
  // shunt loading of an end coupling C01' behind the termination is
  // C01e = C01'/(1 + (w0 C01' Z0)^2).
  auto end_effective = [&](double c01) {
    const double x = w0 * c01 * z0;
    return c01 / (1.0 + x * x);
  };
  d.shunt_c.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double left = (k == 0) ? end_effective(d.coupling_c[0])
                                 : d.coupling_c[static_cast<std::size_t>(k)];
    const double right = (k == n - 1)
                             ? end_effective(d.coupling_c[static_cast<std::size_t>(n)])
                             : d.coupling_c[static_cast<std::size_t>(k + 1)];
    const double c_eff = c_res - left - right;
    if (c_eff <= 0.0) {
      throw NumericalError(
          "coupled design: couplings exceed the resonator capacitance; "
          "choose a larger resonator inductance");
    }
    d.shunt_c[static_cast<std::size_t>(k)] = c_eff;
  }

  // Retune: the end-coupling absorption is a narrowband approximation, so
  // the realized passband sits slightly low.  Simulate the lossless filter,
  // locate the 3 dB band and re-center its geometric midpoint on f0 (what a
  // filter designer does on the bench).  The loss minimum alone would not
  // do: equal-ripple responses have several.
  for (int pass = 0; pass < 4; ++pass) {
    const Circuit probe = realize_coupled_resonator(d);
    double best_il = 1e300;
    std::vector<double> il(401);
    for (int i = 0; i <= 400; ++i) {
      const double f = f0 * (0.80 + 0.40 * static_cast<double>(i) / 400.0);
      il[static_cast<std::size_t>(i)] = analyze_at(probe, f).il_db();
      best_il = std::min(best_il, il[static_cast<std::size_t>(i)]);
    }
    int lo = 0;
    while (lo <= 400 && il[static_cast<std::size_t>(lo)] > best_il + 3.0) ++lo;
    int hi = 400;
    while (hi >= 0 && il[static_cast<std::size_t>(hi)] > best_il + 3.0) --hi;
    if (lo >= hi) break;
    const double f_lo = f0 * (0.80 + 0.40 * lo / 400.0);
    const double f_hi = f0 * (0.80 + 0.40 * hi / 400.0);
    const double pull = std::sqrt(f_lo * f_hi) / f0;
    if (std::abs(pull - 1.0) < 1e-3) break;
    for (double& c : d.shunt_c) c *= pull * pull;
  }
  return d;
}

Circuit realize_coupled_resonator(const CoupledResonatorDesign& design,
                                  const ComponentQuality& quality) {
  Circuit ckt;
  const int in = ckt.add_node();
  ckt.set_port1(in, design.z0);

  int prev = in;
  for (int k = 0; k < design.order; ++k) {
    const int node = ckt.add_node();
    ckt.add_capacitor(prev, node, design.coupling_c[static_cast<std::size_t>(k)],
                      quality.capacitor_q, strf("Cc%d", k));
    ckt.add_inductor(node, 0, design.resonator_l, quality.inductor_q,
                     strf("Lres%d", k + 1));
    ckt.add_capacitor(node, 0, design.shunt_c[static_cast<std::size_t>(k)],
                      quality.capacitor_q, strf("Cres%d", k + 1));
    prev = node;
  }
  const int out = ckt.add_node();
  ckt.add_capacitor(prev, out,
                    design.coupling_c[static_cast<std::size_t>(design.order)],
                    quality.capacitor_q, strf("Cc%d", design.order));
  ckt.set_port2(out, design.z0);
  return ckt;
}

}  // namespace ipass::rf
