// ABCD (chain) two-port algebra.
//
// Used to cascade stages of the GPS receive chain (Fig 2) and as an
// independent cross-check of the MNA engine in the property tests: a pure
// ladder analyzed by ABCD cascading must match the MNA solution exactly.
#pragma once

#include <complex>

namespace ipass::rf {

using Complex = std::complex<double>;

struct Abcd {
  Complex a{1.0, 0.0};
  Complex b{0.0, 0.0};
  Complex c{0.0, 0.0};
  Complex d{1.0, 0.0};

  // Identity (through connection).
  static Abcd identity();
  // Series impedance Z in the signal path.
  static Abcd series(Complex z);
  // Shunt admittance Y to ground.
  static Abcd shunt(Complex y);
  // Ideal transformer with turns ratio n (port1:port2 = n:1).
  static Abcd transformer(double n);

  // Chain: this stage followed by `next`.
  Abcd cascade(const Abcd& next) const;

  Complex determinant() const;

  // Convert to S-parameters with source and load reference impedances.
  struct S {
    Complex s11, s12, s21, s22;
  };
  S to_s(double z01, double z02) const;
};

}  // namespace ipass::rf
