#include "rf/elliptic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/polynomial.hpp"
#include "common/units.hpp"

namespace ipass::rf {

double ellip_k(double k) {
  require(k >= 0.0 && k < 1.0, "ellip_k: modulus must be in [0,1)");
  // K(k) = pi / (2 agm(1, k')) with k' = sqrt(1 - k^2).
  double a = 1.0;
  double b = std::sqrt(1.0 - k * k);
  for (int i = 0; i < 64 && std::abs(a - b) > 1e-16 * a; ++i) {
    const double an = 0.5 * (a + b);
    b = std::sqrt(a * b);
    a = an;
  }
  return kPi / (2.0 * a);
}

JacobiSncndn jacobi_sncndn(double u, double k) {
  require(k >= 0.0 && k < 1.0, "jacobi_sncndn: modulus must be in [0,1)");
  JacobiSncndn out;
  const double emmc = 1.0 - k * k;  // k'^2

  // Descending-Landen / AGM evaluation (A&S 16.4, classic sncndn routine).
  constexpr double kAccuracy = 1.0e-14;
  if (emmc == 0.0) {
    out.sn = std::tanh(u);
    out.cn = 1.0 / std::cosh(u);
    out.dn = out.cn;
    return out;
  }
  if (k == 0.0) {
    out.sn = std::sin(u);
    out.cn = std::cos(u);
    out.dn = 1.0;
    return out;
  }

  double em[16];
  double en[16];
  double a = 1.0;
  double dn = 1.0;
  double emc = emmc;
  double c = 0.0;
  int l = 0;
  for (int i = 0; i < 14; ++i) {
    l = i;
    em[i] = a;
    emc = std::sqrt(emc);
    en[i] = emc;
    c = 0.5 * (a + emc);
    if (std::abs(a - emc) <= kAccuracy * a) break;
    emc *= a;
    a = c;
  }
  double uu = c * u;
  double sn = std::sin(uu);
  double cn = std::cos(uu);
  if (sn != 0.0) {
    a = cn / sn;
    c *= a;
    for (int i = l; i >= 0; --i) {
      const double b = em[i];
      a *= c;
      c *= dn;
      dn = (en[i] + a) / (b + a);
      a = c / b;
    }
    a = 1.0 / std::sqrt(c * c + 1.0);
    sn = (sn >= 0.0) ? a : -a;
    cn = c * sn;
  }
  out.sn = sn;
  out.cn = cn;
  out.dn = dn;
  return out;
}

double jacobi_sn(double u, double k) { return jacobi_sncndn(u, k).sn; }

double jacobi_cd(double u, double k) {
  const JacobiSncndn j = jacobi_sncndn(u, k);
  ensure(std::abs(j.dn) > 1e-300, "jacobi_cd: dn vanished");
  return j.cn / j.dn;
}

double elliptic_degree_modulus(int n, double k) {
  require(n >= 1, "elliptic_degree_modulus: order must be >= 1");
  require(k > 0.0 && k < 1.0, "elliptic_degree_modulus: modulus must be in (0,1)");
  // k1 = k^n * prod_i sn(u_i K, k)^4, u_i = (2i-1)/n  (Orfanidis eq. 47).
  const double big_k = ellip_k(k);
  const int half = n / 2;
  double k1 = std::pow(k, n);
  for (int i = 1; i <= half; ++i) {
    const double ui = (2.0 * i - 1.0) / n;
    const double s = jacobi_sn(ui * big_k, k);
    k1 *= std::pow(s, 4);
  }
  ensure(k1 > 0.0 && k1 < 1.0, "elliptic_degree_modulus: k1 out of range");
  return k1;
}

double EllipticRational::operator()(double w) const {
  double num = (order % 2 == 1) ? w : 1.0;
  double den = 1.0;
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    num *= (w * w - zeros[i] * zeros[i]);
    den *= (w * w - poles[i] * poles[i]);
  }
  return r0 * num / den;
}

EllipticRational elliptic_rational(int n, double k) {
  require(n >= 1, "elliptic_rational: order must be >= 1");
  require(k > 0.0 && k < 1.0, "elliptic_rational: modulus must be in (0,1)");
  EllipticRational r;
  r.order = n;
  r.k = k;
  const double big_k = ellip_k(k);
  const int half = n / 2;
  for (int i = 1; i <= half; ++i) {
    const double ui = (2.0 * i - 1.0) / n;
    const double z = jacobi_cd(ui * big_k, k);
    r.zeros.push_back(z);
    r.poles.push_back(1.0 / (k * z));
  }
  r.r0 = 1.0;
  const double at_one = r(1.0);
  ensure(std::abs(at_one) > 1e-300, "elliptic_rational: R_n(1) vanished");
  r.r0 = 1.0 / at_one;
  return r;
}

double EllipticApproximation::s21_magnitude(double w) const {
  // |S21(jw)| from the pole/zero set: |g| * prod|jw - z| / prod|jw - p|
  // with jw-axis zero pairs at +-j wz.
  const std::complex<double> jw(0.0, w);
  double num = 1.0;
  for (const double wz : transmission_zeros) {
    num *= std::abs(jw * jw + std::complex<double>(wz * wz, 0.0));
  }
  double den = 1.0;
  for (const std::complex<double>& p : poles) {
    den *= std::abs(jw - p);
  }
  return std::abs(gain) * num / den;
}

double EllipticApproximation::attenuation_db(double w) const {
  return -db20(s21_magnitude(w));
}

namespace {

// Substitute w -> -s^2 into a polynomial given in the variable w.
Poly subst_neg_s2(const Poly& pw) {
  const int d = pw.degree();
  std::vector<double> out(static_cast<std::size_t>(2 * d) + 1, 0.0);
  for (int i = 0; i <= d; ++i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    out[static_cast<std::size_t>(2 * i)] = sign * pw.coefficient(static_cast<std::size_t>(i));
  }
  return Poly(std::move(out));
}

}  // namespace

EllipticApproximation elliptic_approximation(int n, double ripple_db, double selectivity) {
  require(n >= 3 && n % 2 == 1, "elliptic_approximation: order must be odd and >= 3");
  require(ripple_db > 0.0, "elliptic_approximation: ripple must be positive");
  require(selectivity > 1.0, "elliptic_approximation: selectivity ws/wp must exceed 1");

  EllipticApproximation ap;
  ap.order = n;
  ap.ripple_db = ripple_db;
  ap.selectivity = selectivity;
  ap.eps_p = std::sqrt(from_db10(ripple_db) - 1.0);

  const double k = 1.0 / selectivity;
  ap.rational = elliptic_rational(n, k);
  const double k1 = elliptic_degree_modulus(n, k);
  const double eps_s = ap.eps_p / k1;
  ap.stopband_db = db10(1.0 + eps_s * eps_s);

  // Transmission zeros: w = poles of R_n.
  ap.transmission_zeros = ap.rational.poles;

  // Build A(w) = prod(w - z_i^2), B(w) = prod(w - p_i^2) in the variable
  // w = Omega^2 (R_n^2 = r0^2 w A^2 / B^2 for odd n).
  std::vector<double> z2;
  std::vector<double> p2;
  for (const double z : ap.rational.zeros) z2.push_back(z * z);
  for (const double p : ap.rational.poles) p2.push_back(p * p);
  const Poly a_w = Poly::from_real_roots(z2);
  const Poly b_w = Poly::from_real_roots(p2);

  const Poly as = subst_neg_s2(a_w);
  const Poly bs = subst_neg_s2(b_w);

  // Q(s) = B(-s^2)^2 - eps^2 r0^2 s^2 A(-s^2)^2; poles of S21 are the
  // left-half-plane roots of Q.
  const double c = ap.eps_p * ap.rational.r0;
  const Poly s2 = Poly({0.0, 0.0, 1.0});
  Poly q = bs * bs - (s2 * (as * as)) * (c * c);
  q.trim();
  ensure(q.degree() == 2 * n, "elliptic_approximation: characteristic degree mismatch");

  std::vector<std::complex<double>> lhp = left_half_plane_roots(q);
  ensure(static_cast<int>(lhp.size()) == n,
         "elliptic_approximation: expected n left-half-plane poles");
  // Deterministic order: by imaginary part.
  std::sort(lhp.begin(), lhp.end(), [](const auto& x, const auto& y) {
    return x.imag() < y.imag();
  });
  ap.poles = lhp;

  // Gain for unit DC transmission: S21(s) = g prod(s^2+wz^2)/D(s).
  std::complex<double> d0(1.0, 0.0);
  for (const auto& p : ap.poles) d0 *= -p;
  double n0 = 1.0;
  for (const double wz : ap.transmission_zeros) n0 *= wz * wz;
  ensure(std::abs(d0.imag()) < 1e-9 * std::abs(d0.real()) + 1e-30,
         "elliptic_approximation: D(0) not real");
  ap.gain = d0.real() / n0;

  return ap;
}

}  // namespace ipass::rf
