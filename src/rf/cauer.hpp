// Darlington synthesis of odd-order elliptic (Cauer) lowpass ladders.
//
// From the analytic S21/S11 of elliptic.hpp, the input impedance
// Zin = (D + E)/(D - E) is expanded into a mid-shunt ladder
// (shunt C, series L||C trap, shunt C, ...) by alternating partial shunt-
// capacitor removal and full removal of the series resonator at each
// transmission zero (classical zero-shifting synthesis).
//
// The paper's LNA output filter — "Being of Cauer type it achieves a good
// rejection at the image frequency" with a 3-stage integrated realization —
// is exactly such a ladder with n = 3.
#pragma once

#include "rf/elliptic.hpp"
#include "rf/prototype.hpp"

namespace ipass::rf {

// Synthesize the normalized (wp = 1, R = 1) elliptic lowpass ladder.
// Preconditions: n odd and >= 3, ripple_db > 0, selectivity ws/wp > 1.
// Throws NumericalError if no extraction order yields positive elements
// (does not happen for realizable specs).
LadderPrototype cauer_lowpass(int n, double ripple_db, double selectivity);

// Convenience: the approximation backing a given ladder spec (for analytic
// reference curves in tests and benches).
EllipticApproximation cauer_approximation(int n, double ripple_db, double selectivity);

}  // namespace ipass::rf
