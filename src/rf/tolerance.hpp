// Monte-Carlo component-tolerance analysis.
//
// The paper's first "show killer": "In certain cases, the tolerances of
// integrated passives do not suffice for the target application" (15% as
// fabricated, <1% after laser tuning, section 2).  This module quantifies
// that: sample a circuit's element values within their tolerances, analyze
// each instance, and report the parametric yield against a spec predicate.
#pragma once

#include <cstdint>
#include <functional>

#include "rf/analysis.hpp"
#include "rf/netlist.hpp"

namespace ipass::rf {

// Relative 3-sigma tolerance per element kind (0.15 = +-15%).
struct ToleranceSpec {
  double resistor = 0.0;
  double inductor = 0.0;
  double capacitor = 0.0;

  double for_kind(ElementKind kind) const;

  // Paper section 2 anchor points.
  static ToleranceSpec integrated_untrimmed();  // ~15%
  static ToleranceSpec integrated_trimmed();    // <1% after laser tuning
  static ToleranceSpec smd_standard();          // 5% / 10% discretes
};

// A specification predicate on the analyzed filter.
using SpecCheck = std::function<bool(const Circuit& instance)>;

struct ToleranceResult {
  std::size_t samples = 0;
  std::size_t passing = 0;
  double parametric_yield = 0.0;  // passing / samples
  double ci95_half_width = 0.0;   // binomial normal approximation
  // Distribution of the monitored metric (e.g. midband IL).
  double metric_mean = 0.0;
  double metric_stddev = 0.0;
  double metric_min = 0.0;
  double metric_max = 0.0;
};

struct ToleranceOptions {
  std::size_t samples = 2000;
  std::uint64_t seed = 42;
};

// Run the analysis.  `metric` is evaluated on every sampled instance (for
// the distribution statistics); `passes` decides spec compliance.
ToleranceResult analyze_tolerance(const Circuit& nominal, const ToleranceSpec& tolerance,
                                  const std::function<double(const Circuit&)>& metric,
                                  const std::function<bool(double)>& passes,
                                  const ToleranceOptions& options = {});

// Convenience: parametric yield of a bandpass filter against a maximum
// midband insertion loss and a maximum center-frequency pull.
ToleranceResult bandpass_parametric_yield(const Circuit& nominal,
                                          const ToleranceSpec& tolerance, double f0,
                                          double max_il_db, double max_f0_shift_rel,
                                          const ToleranceOptions& options = {});

}  // namespace ipass::rf
