// Monte-Carlo component-tolerance analysis.
//
// The paper's first "show killer": "In certain cases, the tolerances of
// integrated passives do not suffice for the target application" (15% as
// fabricated, <1% after laser tuning, section 2).  This module quantifies
// that: sample a circuit's element values within their tolerances, analyze
// each instance, and report the parametric yield against a spec predicate.
#pragma once

#include <cstdint>
#include <functional>

#include "rf/analysis.hpp"
#include "rf/netlist.hpp"

namespace ipass::rf {

// Relative 3-sigma tolerance per element kind (0.15 = +-15%).
struct ToleranceSpec {
  double resistor = 0.0;
  double inductor = 0.0;
  double capacitor = 0.0;

  double for_kind(ElementKind kind) const;

  // Paper section 2 anchor points.
  static ToleranceSpec integrated_untrimmed();  // ~15%
  static ToleranceSpec integrated_trimmed();    // <1% after laser tuning
  static ToleranceSpec smd_standard();          // 5% / 10% discretes
};

// A specification predicate on the analyzed filter.
using SpecCheck = std::function<bool(const Circuit& instance)>;

// A metric evaluated on the reusable zero-allocation sweep workspace (its
// element values already carry the sample's perturbation).
using WorkspaceMetric = std::function<double(SweepWorkspace& instance)>;

// A metric evaluated on a batch workspace whose lanes each carry one
// sample's perturbed values; must write ws.lanes() metric values to out.
using BatchWorkspaceMetric =
    std::function<void(BatchSweepWorkspace& instance, double* out)>;

struct ToleranceResult {
  std::size_t samples = 0;
  std::size_t passing = 0;
  double parametric_yield = 0.0;  // passing / samples
  double ci95_half_width = 0.0;   // binomial normal approximation
  // Distribution of the monitored metric (e.g. midband IL).
  double metric_mean = 0.0;
  double metric_stddev = 0.0;
  double metric_min = 0.0;
  double metric_max = 0.0;
};

struct ToleranceOptions {
  std::size_t samples = 2000;
  std::uint64_t seed = 42;
  // Worker threads; 0 resolves to IPASS_THREADS / hardware concurrency.
  // Results are bit-identical for every thread count (see below).
  unsigned threads = 0;
};

// Samples per parallel chunk.  Part of the determinism contract: chunk c
// perturbs its samples from the dedicated RNG stream Pcg32(seed, c), and
// chunk results are folded in ascending chunk order, so a ToleranceResult
// is a pure function of (circuit, tolerance, spec, samples, seed) — the
// thread count only changes the wall-clock time.
inline constexpr std::size_t kToleranceChunk = 64;

// Lane width of the batched engine: inside each 64-sample chunk, samples
// are consumed in groups of this many, stamped into a BatchSweepWorkspace
// and solved together.  Grouping does not change any result — every lane is
// bit-identical to a scalar solve of its sample — so the batch width, like
// the thread count, only changes the wall-clock time.
inline constexpr std::size_t kToleranceBatchLanes = 8;

// Run the analysis.  `metric` is evaluated on every sampled instance (for
// the distribution statistics); `passes` decides spec compliance.  Each
// chunk perturbs a single scratch copy of the circuit in place (absolute
// value writes, no per-sample Circuit copies).  NOTE: with more than one
// thread, `metric` and `passes` are invoked concurrently from pool workers
// — they must be thread-safe (pure functions of their argument are; mutating
// shared captured state is not).  Pass options.threads = 1 for callbacks
// with side effects.
ToleranceResult analyze_tolerance(const Circuit& nominal, const ToleranceSpec& tolerance,
                                  const std::function<double(const Circuit&)>& metric,
                                  const std::function<bool(double)>& passes,
                                  const ToleranceOptions& options = {});

// Fast path: the metric runs directly on a SweepWorkspace, so a sample costs
// one stamp-and-solve per probed frequency and no heap allocation at all.
// Draws the same perturbations as the Circuit variant (identical RNG
// consumption), and a workspace analysis is bit-identical to analyzing the
// equivalently perturbed Circuit — so both variants report identical results
// for metrics that probe the same frequencies.
ToleranceResult analyze_tolerance_fast(const Circuit& nominal,
                                       const ToleranceSpec& tolerance,
                                       const WorkspaceMetric& metric,
                                       const std::function<bool(double)>& passes,
                                       const ToleranceOptions& options = {});

// Batched fast path: the metric sees kToleranceBatchLanes samples at a
// time in the lanes of a BatchSweepWorkspace.  Perturbations ride the same
// RNG streams as the scalar variants (the Gaussian block of a chunk is
// drawn up front via Pcg32::fill_normals, which consumes the stream
// identically), and every lane solve is bit-identical to the scalar
// solver — so for a batch metric that probes the same frequencies as a
// scalar metric, the ToleranceResult is bit-identical to
// analyze_tolerance_fast.  The trailing partial group evaluates stale
// (valid) values in its unused lanes and ignores them.
ToleranceResult analyze_tolerance_batched(const Circuit& nominal,
                                          const ToleranceSpec& tolerance,
                                          const BatchWorkspaceMetric& metric,
                                          const std::function<bool(double)>& passes,
                                          const ToleranceOptions& options = {});

// Convenience: parametric yield of a bandpass filter against a maximum
// midband insertion loss and a maximum center-frequency pull.  Rides the
// batched engine; results are bit-identical to the scalar workspace path
// (and to releases that used it) for every thread count and batch width.
ToleranceResult bandpass_parametric_yield(const Circuit& nominal,
                                          const ToleranceSpec& tolerance, double f0,
                                          double max_il_db, double max_f0_shift_rel,
                                          const ToleranceOptions& options = {});

}  // namespace ipass::rf
